// Scale-sweep determinism battery for the hot-path scaling work (ISSUE 9).
//
// The oracle: every hot-path optimization — batched wave submission,
// per-slot segment arenas, the radix split — must be a PURE RELOCATION
// under the (src, seq) merge-fold contract. So for every cell of
//
//   workers {1, 2, 8, 16, 32} x arena {on, off} x batched waves {on, off}
//                             x spill {on, off}
//
// the result must be bitwise identical to the all-off single-worker
// reference: shuffled uint64 sums, word counts, and PageRank's
// floating-point rank vector (where a single reordered addition would
// flip a ULP and fail the bit compare). Results are compared in canonical
// form (sorted (key, value-bits)) because worker count legitimately moves
// entries between partitions; it must never change a result bit.
//
// Worker counts deliberately overshoot the host: 16 and 32 workers on a
// small core count maximize index-steal interleavings through the wave
// descriptor, which is exactly the surface these optimizations touch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analytics/page_rank.hpp"
#include "analytics/word_count.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"
#include "workload/text_corpus.hpp"

namespace dias {
namespace {

using engine::Engine;
using engine::ShuffleOptions;
using engine::SpillBackend;
using engine::SpillReader;
using engine::SpillStats;
using engine::StageOptions;

constexpr std::size_t kInputPartitions = 6;
constexpr std::size_t kOutPartitions = 7;
const std::size_t kWorkerSweep[] = {1, 2, 8, 16, 32};

// Heap-backed SpillBackend (same protocol as the spill property suite's):
// lets the battery drive the spill path without touching disk, with small
// chunks so decode crosses chunk boundaries.
class MemorySpill final : public SpillBackend {
 public:
  std::uint64_t write(const std::string& bytes) override {
    std::lock_guard lock(mu_);
    const std::uint64_t id = next_id_++;
    segments_[id] = bytes;
    ++stats_.segments_written;
    stats_.bytes_written += bytes.size();
    return id;
  }

  std::unique_ptr<SpillReader> open(std::uint64_t handle) override {
    std::lock_guard lock(mu_);
    const auto it = segments_.find(handle);
    if (it == segments_.end()) throw error("spill segment not found");
    ++stats_.segments_read;
    stats_.bytes_read += it->second.size();
    return std::make_unique<Reader>(it->second);
  }

  void release(std::uint64_t handle) override {
    std::lock_guard lock(mu_);
    segments_.erase(handle);
  }

  SpillStats stats() const override {
    std::lock_guard lock(mu_);
    return stats_;
  }

 private:
  class Reader final : public SpillReader {
   public:
    explicit Reader(std::string bytes) : bytes_(std::move(bytes)) {}
    bool next(std::string& out) override {
      if (off_ >= bytes_.size()) return false;
      const std::size_t n = std::min<std::size_t>(97, bytes_.size() - off_);
      out.assign(bytes_, off_, n);
      off_ += n;
      return true;
    }

   private:
    std::string bytes_;
    std::size_t off_ = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::string> segments_;
  SpillStats stats_;
};

// One sweep cell. Reference = {1 worker, everything off}.
struct Cell {
  std::size_t workers;
  bool arena;
  bool batched;
  bool spill;

  std::string label() const {
    return "workers=" + std::to_string(workers) + (arena ? " arena" : " no-arena") +
           (batched ? " waves" : " legacy") + (spill ? " spill" : " resident");
  }
};

std::vector<Cell> sweep_cells() {
  std::vector<Cell> cells;
  for (const std::size_t workers : kWorkerSweep) {
    for (const bool arena : {false, true}) {
      for (const bool batched : {false, true}) {
        for (const bool spill : {false, true}) {
          cells.push_back({workers, arena, batched, spill});
        }
      }
    }
  }
  return cells;
}

Engine make_engine(const Cell& cell) {
  Engine::Options o;
  o.workers = cell.workers;
  o.seed = 4242;
  o.shuffle_arena = cell.arena;
  o.batched_waves = cell.batched;
  return Engine(o);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> make_records(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(4000);
  for (std::size_t i = 0; i < 4000; ++i) {
    const double u = rng.uniform();
    // Zipf-ish keys: buckets get uneven load, so waves actually steal.
    const auto key =
        static_cast<std::uint64_t>(400.0 * std::pow(u, 3.0));
    out.emplace_back(key, rng.uniform_int(1000) + 1);
  }
  return out;
}

// Canonical form: sorted (key, value-bits). Bitwise, not approximate.
template <typename V>
std::vector<std::pair<std::uint64_t, std::uint64_t>> canonical(
    const engine::Dataset<std::pair<std::uint64_t, V>>& ds) {
  static_assert(sizeof(V) == sizeof(std::uint64_t));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::size_t p = 0; p < ds.partitions(); ++p) {
    for (const auto& [k, v] : ds.partition(p)) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      entries.emplace_back(k, bits);
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

TEST(ScaleDeterminismTest, ShuffledSumsBitIdenticalAcrossSweep) {
  const auto records = make_records(17);
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  const auto run = [&](const Cell& cell) {
    Engine eng = make_engine(cell);
    MemorySpill spill;
    ShuffleOptions shuffle;
    if (cell.spill) {
      eng.set_spill_backend(&spill);
      shuffle.memory_budget_bytes = 8 * 1024;  // well below the dataset
    }
    const auto ds = eng.parallelize(records, kInputPartitions);
    StageOptions opts;
    opts.name = "scale";
    auto result = canonical(eng.reduce_by_key(ds, sum, kOutPartitions, opts, shuffle));
    if (cell.spill) {
      EXPECT_GT(spill.stats().segments_written, 0u) << cell.label();
    }
    return result;
  };

  const auto reference = run({1, false, false, false});
  ASSERT_FALSE(reference.empty());
  for (const Cell& cell : sweep_cells()) {
    SCOPED_TRACE(cell.label());
    EXPECT_EQ(run(cell), reference);
  }
}

// Order-sensitive leg: double sums, where any change in per-key fold order
// (which (src, seq) fully determines) shows up as a ULP difference.
TEST(ScaleDeterminismTest, DoubleSumsBitIdenticalAcrossSweep) {
  std::vector<std::pair<std::uint64_t, double>> records;
  for (const auto& [k, v] : make_records(23)) {
    records.emplace_back(k, static_cast<double>(v) * 1.0e-3 + 0.1);
  }
  const auto sum = [](double a, double b) { return a + b; };

  const auto run = [&](const Cell& cell) {
    Engine eng = make_engine(cell);
    MemorySpill spill;
    ShuffleOptions shuffle;
    if (cell.spill) {
      eng.set_spill_backend(&spill);
      shuffle.memory_budget_bytes = 8 * 1024;
    }
    const auto ds = eng.parallelize(records, kInputPartitions);
    StageOptions opts;
    opts.name = "scale";
    return canonical(eng.reduce_by_key(ds, sum, kOutPartitions, opts, shuffle));
  };

  const auto reference = run({1, false, false, false});
  for (const Cell& cell : sweep_cells()) {
    SCOPED_TRACE(cell.label());
    EXPECT_EQ(run(cell), reference);
  }
}

TEST(ScaleDeterminismTest, WordCountIdenticalAcrossSweep) {
  workload::TextCorpusParams params;
  params.posts = 150;
  params.mean_words_per_post = 25;
  params.vocabulary = 300;
  params.seed = 31;
  const auto corpus = workload::generate_text_corpus("scale", params);

  const auto run = [&](const Cell& cell) {
    Engine eng = make_engine(cell);
    MemorySpill spill;
    ShuffleOptions shuffle;
    if (cell.spill) {
      eng.set_spill_backend(&spill);
      shuffle.memory_budget_bytes = 16 * 1024;
    }
    const auto rows = eng.parallelize(corpus.rows, kInputPartitions);
    return analytics::word_count(eng, rows, 8, -1.0, shuffle).counts;
  };

  const auto reference = run({1, false, false, false});
  ASSERT_FALSE(reference.empty());
  for (const Cell& cell : sweep_cells()) {
    SCOPED_TRACE(cell.label());
    EXPECT_EQ(run(cell), reference);
  }
}

// PageRank: five shuffles per run (adjacency + one per iteration), all
// floating point. No spill dimension — page_rank doesn't thread shuffle
// options through — so this leg sweeps workers x arena x batched.
TEST(ScaleDeterminismTest, PageRankBitwiseIdenticalAcrossSweep) {
  workload::GraphParams gp;
  gp.scale = 8;
  gp.edges = 2048;
  gp.seed = 47;
  const auto edges = workload::generate_rmat_graph(gp);

  const auto run = [&](const Cell& cell) {
    Engine eng = make_engine(cell);
    analytics::PageRankOptions opts;
    opts.iterations = 4;
    opts.partitions = kOutPartitions;
    return analytics::page_rank(eng, eng.parallelize(edges, kInputPartitions), opts).ranks;
  };

  const auto reference = run({1, false, false, false});
  ASSERT_FALSE(reference.empty());
  for (const std::size_t workers : kWorkerSweep) {
    for (const bool arena : {false, true}) {
      for (const bool batched : {false, true}) {
        const Cell cell{workers, arena, batched, false};
        SCOPED_TRACE(cell.label());
        const auto ranks = run(cell);
        ASSERT_EQ(ranks.size(), reference.size());
        for (const auto& [vertex, rank] : reference) {
          const auto it = ranks.find(vertex);
          ASSERT_NE(it, ranks.end()) << "vertex " << vertex;
          std::uint64_t expect_bits = 0;
          std::uint64_t got_bits = 0;
          std::memcpy(&expect_bits, &rank, sizeof(expect_bits));
          std::memcpy(&got_bits, &it->second, sizeof(got_bits));
          EXPECT_EQ(got_bits, expect_bits) << "vertex " << vertex;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dias
