// Model-vs-runtime validation (paper Section 5.2.1 in miniature): drive the
// real DiasDispatcher with synthetic two-class Poisson traffic whose job
// structure matches a JobClassProfile exactly — one map task, one reduce
// task, one slot, so a job is Exp(setup) + Exp(map) + Exp(shuffle) +
// Exp(reduce) — and check the measured per-class mean response times land
// within a loose factor of the M/G/1 non-preemptive prediction. This is an
// end-to-end statistical check, not a microbenchmark: tolerances are wide
// so scheduler jitter and timer overshoot on CI hosts don't flake it.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/dispatcher.hpp"
#include "model/response_time_model.hpp"

namespace dias {
namespace {

using Clock = std::chrono::steady_clock;

void busy_wait_s(double seconds) {
  const auto until = Clock::now() + std::chrono::duration<double>(seconds);
  while (Clock::now() < until) {
  }
}

model::JobClassProfile make_profile(double arrival_rate) {
  model::JobClassProfile p;
  p.arrival_rate = arrival_rate;
  p.slots = 1;
  p.map_task_pmf = {1.0};     // exactly one map task
  p.reduce_task_pmf = {1.0};  // exactly one reduce task
  p.map_rate = 500.0;         // mean 2 ms
  p.reduce_rate = 1000.0 / 1.5;  // mean 1.5 ms
  p.shuffle_rate = 2000.0;    // mean 0.5 ms
  p.mean_overhead_theta0 = 0.001;  // mean 1 ms setup, theta-independent
  p.mean_overhead_theta90 = 0.001;
  return p;
}

// One synthetic job duration drawn from the profile's phase structure.
double sample_job_s(const model::JobClassProfile& p, Rng& rng) {
  return rng.exponential(1.0 / p.mean_overhead_theta0) +
         rng.exponential(p.map_rate) + rng.exponential(p.shuffle_rate) +
         rng.exponential(p.reduce_rate);
}

TEST(ModelRuntimeValidationTest, DispatcherMatchesNonPreemptivePrediction) {
  // Low priority = class 0, high = class 1 (dispatcher and model share the
  // "larger index is higher priority" convention). E[S] = 5 ms per class,
  // total arrival rate 100 jobs/s -> utilization ~0.5.
  const auto low = make_profile(60.0);
  const auto high = make_profile(40.0);
  constexpr std::size_t kLowJobs = 360;
  constexpr std::size_t kHighJobs = 240;  // ~6 s of traffic per class

  core::DiasDispatcher dispatcher({0.0, 0.0});
  const auto epoch = Clock::now();
  const auto feed = [&](const model::JobClassProfile& profile,
                        std::size_t priority, std::size_t jobs,
                        std::uint64_t seed) {
    Rng arrivals(seed);
    Rng services(seed + 1000);
    double next_s = 0.0;
    for (std::size_t i = 0; i < jobs; ++i) {
      next_s += arrivals.exponential(profile.arrival_rate);
      const double duration_s = sample_job_s(profile, services);
      std::this_thread::sleep_until(epoch +
                                    std::chrono::duration<double>(next_s));
      dispatcher.submit(priority,
                        [duration_s](double) { busy_wait_s(duration_s); });
    }
  };
  std::thread low_feeder(feed, low, 0, kLowJobs, 7);
  std::thread high_feeder(feed, high, 1, kHighJobs, 99);
  low_feeder.join();
  high_feeder.join();
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), kLowJobs + kHighJobs);

  double mean_response[2] = {0.0, 0.0};
  std::size_t count[2] = {0, 0};
  for (const auto& r : records) {
    mean_response[r.priority] += r.response_s();
    ++count[r.priority];
  }
  ASSERT_EQ(count[0], kLowJobs);
  ASSERT_EQ(count[1], kHighJobs);
  mean_response[0] /= static_cast<double>(count[0]);
  mean_response[1] /= static_cast<double>(count[1]);

  const std::vector<model::JobClassProfile> classes = {low, high};
  const std::vector<double> theta = {0.0, 0.0};
  const auto predicted = model::ResponseTimeModel::predict(
      classes, theta, model::Discipline::kNonPreemptive,
      model::ModelGranularity::kTaskLevel);
  ASSERT_EQ(predicted.per_class.size(), 2u);
  ASSERT_TRUE(predicted.per_class[0].stable);
  ASSERT_TRUE(predicted.per_class[1].stable);

  // Loose agreement: a finite seeded run plus OS timer overshoot can drift
  // the means, but they must land within a small factor of the model.
  for (int k = 0; k < 2; ++k) {
    const double want = predicted.per_class[k].mean_response;
    ASSERT_GT(want, 0.0);
    EXPECT_GT(mean_response[k], 0.45 * want) << "class " << k;
    EXPECT_LT(mean_response[k], 2.2 * want) << "class " << k;
  }
  // And the qualitative ordering the priority queue exists to produce: the
  // high class must not wait longer than the low class (small slack for
  // sampling noise).
  EXPECT_LT(mean_response[1], mean_response[0] * 1.15);
}

}  // namespace
}  // namespace dias
