#include "model/wave_level_model.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace dias::model {
namespace {

std::vector<double> point_pmf(int tasks) {
  std::vector<double> pmf(static_cast<std::size_t>(tasks), 0.0);
  pmf.back() = 1.0;
  return pmf;
}

TEST(WavesForTasksTest, CeilingDivision) {
  EXPECT_EQ(waves_for_tasks(0, 20), 0);
  EXPECT_EQ(waves_for_tasks(1, 20), 1);
  EXPECT_EQ(waves_for_tasks(20, 20), 1);
  EXPECT_EQ(waves_for_tasks(21, 20), 2);
  EXPECT_EQ(waves_for_tasks(40, 20), 2);
  EXPECT_EQ(waves_for_tasks(50, 20), 3);  // the paper's 50-partition jobs
  EXPECT_THROW(waves_for_tasks(-1, 20), dias::precondition_error);
  EXPECT_THROW(waves_for_tasks(1, 0), dias::precondition_error);
}

WaveLevelParams base_params() {
  WaveLevelParams p;
  p.slots = 20;
  p.map_task_pmf = point_pmf(50);
  p.reduce_task_pmf = point_pmf(20);
  p.setup = PhaseType::exponential(0.5);          // mean 2
  p.shuffle = PhaseType::exponential(1.0);        // mean 1
  p.map_waves = {PhaseType::erlang(2, 1.0)};      // mean 2 per wave
  p.reduce_waves = {PhaseType::erlang(2, 2.0)};   // mean 1 per wave
  return p;
}

TEST(WaveLevelModelTest, WavePmfSumsToOne) {
  const WaveLevelModel model(base_params());
  const auto& qm = model.map_wave_pmf();
  const auto& qr = model.reduce_wave_pmf();
  EXPECT_NEAR(std::accumulate(qm.begin(), qm.end(), 0.0), 1.0, 1e-12);
  EXPECT_NEAR(std::accumulate(qr.begin(), qr.end(), 0.0), 1.0, 1e-12);
}

TEST(WaveLevelModelTest, FixedTaskCountGivesPointWavePmf) {
  const WaveLevelModel model(base_params());
  // 50 tasks / 20 slots = 3 waves; 20 reduce / 20 slots = 1 wave.
  ASSERT_EQ(model.map_wave_pmf().size(), 4u);
  EXPECT_NEAR(model.map_wave_pmf()[3], 1.0, 1e-12);
  ASSERT_EQ(model.reduce_wave_pmf().size(), 2u);
  EXPECT_NEAR(model.reduce_wave_pmf()[1], 1.0, 1e-12);
}

TEST(WaveLevelModelTest, MeanIsSumOfWaveMeans) {
  const WaveLevelModel model(base_params());
  // setup 2 + 3 map waves * 2 + shuffle 1 + 1 reduce wave * 1 = 10.
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + 3.0 * 2.0 + 1.0 + 1.0, 1e-9);
}

TEST(WaveLevelModelTest, DropRemovesWholeWaves) {
  auto p = base_params();
  p.theta_map = 0.2;  // 50 -> 40 tasks -> 2 waves
  const WaveLevelModel model(p);
  ASSERT_GE(model.map_wave_pmf().size(), 3u);
  EXPECT_NEAR(model.map_wave_pmf()[2], 1.0, 1e-12);
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + 2.0 * 2.0 + 1.0 + 1.0, 1e-9);
}

TEST(WaveLevelModelTest, SubWaveDropDoesNotChangeWaveCount) {
  // Dropping 10% of 50 tasks leaves 45 tasks -> still 3 waves: the paper's
  // observation that dropping below the "critical mass" of a wave barely
  // helps (Section 5.2.2).
  auto p = base_params();
  p.theta_map = 0.1;
  const WaveLevelModel model(p);
  EXPECT_NEAR(model.map_wave_pmf()[3], 1.0, 1e-12);
  EXPECT_NEAR(model.mean_processing_time(), WaveLevelModel(base_params()).mean_processing_time(),
              1e-9);
}

TEST(WaveLevelModelTest, PerWaveDistributionsDiffer) {
  auto p = base_params();
  // First wave slower than later waves (as observed on Spark warm-up).
  p.map_waves = {PhaseType::exponential(0.25), PhaseType::exponential(1.0)};
  const WaveLevelModel model(p);
  // setup 2 + wave1 4 + wave2 1 + wave3 1 + shuffle 1 + reduce 1 = 10.
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + 4.0 + 1.0 + 1.0 + 1.0 + 1.0, 1e-9);
}

TEST(WaveLevelModelTest, RandomTaskCountsMixWaves) {
  auto p = base_params();
  // Uniform over {10, 30}: 1 wave wp .5, 2 waves wp .5.
  p.map_task_pmf.assign(30, 0.0);
  p.map_task_pmf[9] = 0.5;
  p.map_task_pmf[29] = 0.5;
  const WaveLevelModel model(p);
  EXPECT_NEAR(model.map_wave_pmf()[1], 0.5, 1e-12);
  EXPECT_NEAR(model.map_wave_pmf()[2], 0.5, 1e-12);
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + (0.5 * 2.0 + 0.5 * 4.0) + 1.0 + 1.0, 1e-9);
}

TEST(WaveLevelModelTest, ProcessingTimeIsValidDistribution) {
  const WaveLevelModel model(base_params());
  const PhaseType& ph = model.processing_time();
  EXPECT_NEAR(ph.cdf(0.0), 0.0, 1e-9);
  EXPECT_GT(ph.cdf(ph.mean()), 0.3);
  EXPECT_GT(ph.cdf(10.0 * ph.mean()), 0.999);
  EXPECT_GT(ph.variance(), 0.0);
}

TEST(WaveLevelModelTest, FullDropSkipsMapStage) {
  auto p = base_params();
  p.theta_map = 1.0;
  const WaveLevelModel model(p);
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + 1.0 + 1.0, 1e-9);
}

TEST(WaveLevelModelTest, Validation) {
  auto p = base_params();
  p.map_waves.clear();
  EXPECT_THROW(WaveLevelModel{p}, dias::precondition_error);
  p = base_params();
  p.slots = 0;
  EXPECT_THROW(WaveLevelModel{p}, dias::precondition_error);
  p = base_params();
  p.map_task_pmf.clear();
  EXPECT_THROW(WaveLevelModel{p}, dias::precondition_error);
}

class WaveDropSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(WaveDropSweepTest, MeanMatchesWaveArithmetic) {
  // Property: with deterministic task counts, the model mean must equal
  // setup + ceil(eff/C) * wave_mean + shuffle + reduce waves * wave_mean.
  const double theta = GetParam();
  auto p = base_params();
  p.theta_map = theta;
  const WaveLevelModel model(p);
  const int eff = effective_tasks(50, theta);
  const int waves = waves_for_tasks(eff, 20);
  EXPECT_NEAR(model.mean_processing_time(), 2.0 + waves * 2.0 + 1.0 + 1.0, 1e-9)
      << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, WaveDropSweepTest,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace dias::model
