// dias::chaos unit battery (ISSUE 10): schedule grammar, environment
// parsing, selector matching, decision determinism, ScopedChaos hygiene,
// bounded stalls, and the per-shape inject() contract.
#include "chaos/chaos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"

namespace dias::chaos {
namespace {

PointSpec spec_of(Shape shape, double rate, double stall_ms = 5.0) {
  PointSpec s;
  s.shape = shape;
  s.rate = rate;
  s.stall_ms = stall_ms;
  return s;
}

// --- schedule grammar ------------------------------------------------------

TEST(ChaosScheduleTest, ParsesPointBindings) {
  const auto points =
      ChaosSchedule::parse_points("spill.write=throw:0.2,pool.wave=stall:0.05:20");
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].first, "spill.write");
  EXPECT_EQ(points[0].second.shape, Shape::kThrow);
  EXPECT_DOUBLE_EQ(points[0].second.rate, 0.2);
  EXPECT_EQ(points[1].first, "pool.wave");
  EXPECT_EQ(points[1].second.shape, Shape::kStall);
  EXPECT_DOUBLE_EQ(points[1].second.rate, 0.05);
  EXPECT_DOUBLE_EQ(points[1].second.stall_ms, 20.0);

  const auto corrupt = ChaosSchedule::parse_points("spill.*=corrupt:1");
  ASSERT_EQ(corrupt.size(), 1u);
  EXPECT_EQ(corrupt[0].second.shape, Shape::kCorrupt);
}

TEST(ChaosScheduleTest, RejectsMalformedBindings) {
  EXPECT_THROW(ChaosSchedule::parse_points("no-equals-sign"), config_error);
  EXPECT_THROW(ChaosSchedule::parse_points("=throw:0.1"), config_error);
  EXPECT_THROW(ChaosSchedule::parse_points("x=explode:0.1"), config_error);
  EXPECT_THROW(ChaosSchedule::parse_points("x=throw"), config_error);  // no rate
  EXPECT_THROW(ChaosSchedule::parse_points("x=throw:1.5"), config_error);
  EXPECT_THROW(ChaosSchedule::parse_points("x=throw:zebra"), config_error);
  EXPECT_THROW(ChaosSchedule::parse_points("x=stall:0.1:-4"), config_error);
}

TEST(ChaosScheduleTest, FromEnvReadsSeedAndPoints) {
  ::setenv("DIAS_CHAOS_SEED", "1234", 1);
  ::setenv("DIAS_CHAOS_POINTS", "engine.task=throw:0.25", 1);
  const auto s = ChaosSchedule::from_env();
  EXPECT_EQ(s.seed, 1234u);
  ASSERT_EQ(s.points.size(), 1u);
  EXPECT_EQ(s.points[0].first, "engine.task");

  ::setenv("DIAS_CHAOS_SEED", "not-a-number", 1);
  EXPECT_THROW(ChaosSchedule::from_env(), config_error);
  ::unsetenv("DIAS_CHAOS_SEED");
  ::unsetenv("DIAS_CHAOS_POINTS");
  EXPECT_TRUE(ChaosSchedule::from_env().empty());
}

// --- selector matching -----------------------------------------------------

TEST(ChaosPlaneTest, SelectorSpecificityExactBeatsPrefixBeatsWildcard) {
  auto& plane = ChaosPlane::instance();
  InjectionPoint& spill_write = plane.point(points::kSpillWrite);
  InjectionPoint& spill_read = plane.point(points::kSpillRead);
  InjectionPoint& task = plane.point(points::kEngineTask);

  ChaosSchedule schedule;
  schedule.seed = 3;
  schedule.points.push_back({"*", spec_of(Shape::kThrow, 1.0)});
  schedule.points.push_back({"spill.*", spec_of(Shape::kStall, 1.0, 7.0)});
  schedule.points.push_back({"spill.write", spec_of(Shape::kCorrupt, 1.0)});
  ScopedChaos scoped(schedule);

  EXPECT_TRUE(spill_write.armed());
  EXPECT_TRUE(spill_read.armed());
  EXPECT_TRUE(task.armed());
  EXPECT_EQ(spill_write.decide(0).shape, Shape::kCorrupt);  // exact wins
  EXPECT_EQ(spill_read.decide(0).shape, Shape::kStall);     // longest prefix
  EXPECT_EQ(task.decide(0).shape, Shape::kThrow);           // wildcard floor
}

TEST(ChaosPlaneTest, UnmatchedPointsStayDisarmed) {
  auto& plane = ChaosPlane::instance();
  InjectionPoint& admit = plane.point(points::kDispatcherAdmit);
  plane.point(points::kSpillWrite);  // ensure one matching point exists
  ScopedChaos scoped(ChaosSchedule::uniform(1, spec_of(Shape::kThrow, 1.0), "spill.*"));
  EXPECT_FALSE(admit.armed());
  EXPECT_FALSE(admit.decide(0).fire);
  EXPECT_TRUE(plane.armed());  // the spill points exist and matched
}

TEST(ChaosPlaneTest, PointRegisteredAfterInstallInheritsSchedule) {
  ScopedChaos scoped(ChaosSchedule::uniform(9, spec_of(Shape::kThrow, 1.0)));
  InjectionPoint& late = ChaosPlane::instance().point("test.late-registration");
  EXPECT_TRUE(late.armed());
  EXPECT_TRUE(late.decide(0).fire);
}

TEST(ChaosPlaneTest, ScopedChaosDisarmsOnExit) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  {
    ScopedChaos scoped(ChaosSchedule::uniform(5, spec_of(Shape::kThrow, 1.0)));
    EXPECT_TRUE(task.armed());
    EXPECT_TRUE(ChaosPlane::instance().armed());
  }
  EXPECT_FALSE(task.armed());
  EXPECT_FALSE(ChaosPlane::instance().armed());
  EXPECT_FALSE(task.decide(1, 2, 3).fire);
}

// --- decision determinism --------------------------------------------------

TEST(ChaosDecisionTest, PureFunctionOfSeedAndCoordinates) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  std::vector<bool> first;
  {
    ScopedChaos scoped(ChaosSchedule::uniform(77, spec_of(Shape::kThrow, 0.3)));
    for (std::uint64_t a = 0; a < 64; ++a) first.push_back(task.decide(a, a / 2).fire);
  }
  {
    ScopedChaos scoped(ChaosSchedule::uniform(77, spec_of(Shape::kThrow, 0.3)));
    for (std::uint64_t a = 0; a < 64; ++a) {
      EXPECT_EQ(task.decide(a, a / 2).fire, first[a]) << "coordinate " << a;
    }
  }
  // A different seed reshuffles which coordinates fire.
  {
    ScopedChaos scoped(ChaosSchedule::uniform(78, spec_of(Shape::kThrow, 0.3)));
    bool any_difference = false;
    for (std::uint64_t a = 0; a < 64; ++a) {
      any_difference = any_difference || task.decide(a, a / 2).fire != first[a];
    }
    EXPECT_TRUE(any_difference);
  }
}

TEST(ChaosDecisionTest, EmpiricalRateTracksConfiguredRate) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  ScopedChaos scoped(ChaosSchedule::uniform(13, spec_of(Shape::kThrow, 0.2)));
  int fired = 0;
  constexpr int kTrials = 20000;
  for (int a = 0; a < kTrials; ++a) {
    if (task.decide(static_cast<std::uint64_t>(a)).fire) ++fired;
  }
  const double rate = static_cast<double>(fired) / kTrials;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(ChaosDecisionTest, OpCountersResetPerInstall) {
  InjectionPoint& late = ChaosPlane::instance().point("test.op-reset");
  ScopedChaos scoped(ChaosSchedule::uniform(2, spec_of(Shape::kThrow, 0.0)));
  EXPECT_EQ(late.next_op(), 0u);
  EXPECT_EQ(late.next_op(), 1u);
  ChaosPlane::instance().install(ChaosSchedule::uniform(2, spec_of(Shape::kThrow, 0.0)));
  EXPECT_EQ(late.next_op(), 0u);  // fresh stream per installation
}

// --- inject() shapes -------------------------------------------------------

TEST(ChaosInjectTest, ThrowShapeRaisesChaosErrorAsDiasError) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  ScopedChaos scoped(ChaosSchedule::uniform(21, spec_of(Shape::kThrow, 1.0)));
  EXPECT_THROW(task.inject(0), ChaosError);
  try {
    task.inject(1);
    FAIL() << "expected ChaosError";
  } catch (const dias::error& e) {  // absorbable by every existing layer
    EXPECT_NE(std::string(e.what()).find("chaos"), std::string::npos);
  }
  EXPECT_GE(task.fired(), 2u);
}

TEST(ChaosInjectTest, CorruptShapeReturnsTrueForTheCallerToMangle) {
  InjectionPoint& write = ChaosPlane::instance().point(points::kSpillWrite);
  ScopedChaos scoped(ChaosSchedule::uniform(22, spec_of(Shape::kCorrupt, 1.0)));
  EXPECT_TRUE(write.inject(0));
}

TEST(ChaosInjectTest, StallShapeSleepsRoughlyTheConfiguredTime) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  ScopedChaos scoped(ChaosSchedule::uniform(23, spec_of(Shape::kStall, 1.0, 30.0)));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(task.inject(0));
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 25);
}

TEST(ChaosInjectTest, StallIsBoundedByMaxStallMs) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  // Absurd configured stall: arming clamps it to the hard ceiling, so
  // chaos can slow execution but never wedge it.
  ScopedChaos scoped(ChaosSchedule::uniform(24, spec_of(Shape::kStall, 1.0, 1e9)));
  EXPECT_LE(task.decide(0).stall_ms, kMaxStallMs);
}

TEST(ChaosInjectTest, CancellationCutsAStallShort) {
  InjectionPoint& task = ChaosPlane::instance().point(points::kEngineTask);
  ScopedChaos scoped(ChaosSchedule::uniform(25, spec_of(Shape::kStall, 1.0, 1800.0)));
  CancellationToken token;
  token.request_cancel();
  const auto t0 = std::chrono::steady_clock::now();
  task.inject(0, 0, 0, &token);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(ms, 500);  // nowhere near the 1.8 s schedule
}

// --- census ---------------------------------------------------------------

TEST(ChaosPlaneTest, EvaluationCensusCountsOnlyArmedDecisions) {
  auto& plane = ChaosPlane::instance();
  InjectionPoint& task = plane.point(points::kEngineTask);
  plane.clear();
  const std::uint64_t before = plane.evaluations();
  for (int i = 0; i < 100; ++i) task.decide(static_cast<std::uint64_t>(i));
  EXPECT_EQ(plane.evaluations(), before);  // disarmed: zero accounting work
  {
    ScopedChaos scoped(ChaosSchedule::uniform(1, spec_of(Shape::kThrow, 0.0)));
    for (int i = 0; i < 100; ++i) task.decide(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(plane.evaluations(), before + 100);
}

TEST(ChaosPlaneTest, PointNamesListsRegisteredPoints) {
  auto& plane = ChaosPlane::instance();
  plane.point(points::kEngineTask);
  plane.point(points::kSpillWrite);
  const auto names = plane.point_names();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count(points::kEngineTask));
  EXPECT_TRUE(set.count(points::kSpillWrite));
}

}  // namespace
}  // namespace dias::chaos
