#include "cluster/sprinter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dias::cluster {
namespace {

SprintConfig limited_config() {
  SprintConfig c;
  c.enabled = true;
  c.speedup = 2.5;
  c.base_power_w = 180.0;
  c.sprint_power_w = 270.0;  // extra power 90 W
  c.budget_joules = 900.0;   // 10 s of sprinting
  c.replenish_watts = 0.0;
  c.timeout_s = {std::numeric_limits<double>::infinity(), 65.0};
  return c;
}

TEST(SprintConfigTest, TimeoutLookup) {
  const auto c = limited_config();
  EXPECT_TRUE(std::isinf(c.timeout_for_class(0)));
  EXPECT_DOUBLE_EQ(c.timeout_for_class(1), 65.0);
  EXPECT_TRUE(std::isinf(c.timeout_for_class(2)));  // beyond vector
  SprintConfig off = c;
  off.enabled = false;
  EXPECT_TRUE(std::isinf(off.timeout_for_class(1)));
  EXPECT_DOUBLE_EQ(c.extra_power(), 90.0);
}

TEST(SprintBudgetTest, DrainsAtExtraPower) {
  SprintBudget b(limited_config(), 0.0);
  EXPECT_DOUBLE_EQ(b.level(0.0), 900.0);
  const double deplete = b.begin_sprint(0.0);
  EXPECT_NEAR(deplete, 10.0, 1e-12);  // 900 J / 90 W
  EXPECT_NEAR(b.level(5.0), 450.0, 1e-9);
  b.end_sprint(5.0);
  EXPECT_NEAR(b.level(100.0), 450.0, 1e-9);  // no replenish configured
  EXPECT_NEAR(b.consumed(100.0), 450.0, 1e-9);
}

TEST(SprintBudgetTest, DepletesToZero) {
  SprintBudget b(limited_config(), 0.0);
  b.begin_sprint(0.0);
  EXPECT_NEAR(b.level(10.0), 0.0, 1e-9);
  EXPECT_FALSE(b.has_budget(10.0));
  EXPECT_NEAR(b.level(20.0), 0.0, 1e-9);  // clamped, not negative
  b.end_sprint(12.0);
  // Ending past depletion draws nothing extra: with no replenishment an
  // empty battery supplies nothing, so consumption stops at the budget.
  EXPECT_NEAR(b.consumed(12.0), 900.0, 1e-9);
}

TEST(SprintBudgetTest, ReplenishesUpToCap) {
  auto c = limited_config();
  c.replenish_watts = 30.0;
  c.budget_cap_joules = 1000.0;
  SprintBudget b(c, 0.0);
  // Idle: grows 30 J/s up to the cap.
  EXPECT_NEAR(b.level(2.0), 960.0, 1e-9);
  EXPECT_NEAR(b.level(10.0), 1000.0, 1e-9);  // capped
}

TEST(SprintBudgetTest, ReplenishSlowsDrain) {
  auto c = limited_config();
  c.replenish_watts = 30.0;  // net drain 60 W
  SprintBudget b(c, 0.0);
  const double deplete = b.begin_sprint(0.0);
  EXPECT_NEAR(deplete, 900.0 / 60.0, 1e-9);
  EXPECT_NEAR(b.level(5.0), 900.0 - 60.0 * 5.0, 1e-9);
}

TEST(SprintBudgetTest, ReplenishCoveringDrainNeverDepletes) {
  auto c = limited_config();
  c.replenish_watts = 90.0;  // equals extra power
  SprintBudget b(c, 0.0);
  EXPECT_TRUE(std::isinf(b.begin_sprint(0.0)));
  EXPECT_NEAR(b.level(100.0), 900.0, 1e-9);
}

TEST(SprintBudgetTest, UnlimitedBudget) {
  auto c = limited_config();
  c.budget_joules = std::numeric_limits<double>::infinity();
  SprintBudget b(c, 0.0);
  EXPECT_TRUE(std::isinf(b.begin_sprint(0.0)));
  EXPECT_TRUE(b.has_budget(1e9));
  // Consumption is still tracked for energy accounting.
  b.end_sprint(10.0);
  EXPECT_NEAR(b.consumed(10.0), 900.0, 1e-9);
}

TEST(SprintBudgetTest, StateMachineGuards) {
  SprintBudget b(limited_config(), 0.0);
  EXPECT_THROW(b.end_sprint(0.0), dias::precondition_error);
  b.begin_sprint(1.0);
  EXPECT_THROW(b.begin_sprint(2.0), dias::precondition_error);
  EXPECT_THROW(b.level(0.5), dias::precondition_error);  // time moved backwards
}

TEST(SprintBudgetTest, ConfigValidation) {
  auto c = limited_config();
  c.speedup = 0.9;
  EXPECT_THROW(SprintBudget(c, 0.0), dias::precondition_error);
  c = limited_config();
  c.sprint_power_w = 100.0;  // below base
  EXPECT_THROW(SprintBudget(c, 0.0), dias::precondition_error);
  c = limited_config();
  c.replenish_watts = -1.0;
  EXPECT_THROW(SprintBudget(c, 0.0), dias::precondition_error);
}

}  // namespace
}  // namespace dias::cluster
