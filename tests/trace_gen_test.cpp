#include "workload/trace_gen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace dias::workload {
namespace {

std::vector<ClassWorkloadParams> two_classes() {
  ClassWorkloadParams low;
  low.arrival_rate = 0.009;
  low.mean_size_mb = 1117.0;
  low.label = "low";
  ClassWorkloadParams high;
  high.arrival_rate = 0.001;
  high.mean_size_mb = 473.0;
  high.label = "high";
  return {low, high};
}

TEST(TraceGenTest, ArrivalTimesIncrease) {
  TraceGenerator gen(1);
  const auto classes = two_classes();
  const auto trace = gen.text_trace(classes, 500);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_time, trace[i - 1].arrival_time);
  }
}

TEST(TraceGenTest, ClassMixMatchesRates) {
  TraceGenerator gen(2);
  const auto classes = two_classes();  // 9:1 low:high
  const auto trace = gen.text_trace(classes, 20000);
  std::size_t low = 0, high = 0;
  for (const auto& e : trace) {
    (e.spec.priority == 0 ? low : high) += 1;
  }
  EXPECT_NEAR(static_cast<double>(low) / 20000.0, 0.9, 0.01);
  EXPECT_NEAR(static_cast<double>(high) / 20000.0, 0.1, 0.01);
}

TEST(TraceGenTest, TotalRateMatches) {
  TraceGenerator gen(3);
  const auto classes = two_classes();
  const auto trace = gen.text_trace(classes, 20000);
  const double horizon = trace.back().arrival_time;
  EXPECT_NEAR(20000.0 / horizon, 0.01, 0.0005);
}

TEST(TraceGenTest, JobSizesAverageToClassMean) {
  TraceGenerator gen(4);
  const auto classes = two_classes();
  const auto trace = gen.text_trace(classes, 20000);
  double low_size = 0.0;
  std::size_t low_n = 0;
  for (const auto& e : trace) {
    if (e.spec.priority == 0) {
      low_size += e.spec.size_mb;
      ++low_n;
    }
  }
  EXPECT_NEAR(low_size / static_cast<double>(low_n), 1117.0, 30.0);
}

TEST(TraceGenTest, TextJobShape) {
  ClassWorkloadParams p;
  p.mean_size_mb = 500.0;
  p.map_tasks = 50;
  p.reduce_tasks = 20;
  const auto spec = make_text_job(p, 1, 500.0);
  EXPECT_EQ(spec.priority, 1u);
  ASSERT_EQ(spec.stages.size(), 4u);
  EXPECT_EQ(spec.stages[0].kind, cluster::StageKind::kSetup);
  EXPECT_EQ(spec.stages[1].kind, cluster::StageKind::kMap);
  EXPECT_EQ(spec.stages[1].tasks, 50);
  EXPECT_EQ(spec.stages[2].kind, cluster::StageKind::kShuffle);
  EXPECT_EQ(spec.stages[3].kind, cluster::StageKind::kReduce);
  EXPECT_EQ(spec.stages[3].tasks, 20);
  // Map work scales with size: 500 MB * 0.2 s/MB / 50 tasks = 2 s.
  EXPECT_NEAR(spec.stages[1].mean_task_time, 2.0, 1e-12);
}

TEST(TraceGenTest, TextJobWorkScalesWithSize) {
  ClassWorkloadParams p;
  const auto small = make_text_job(p, 0, p.mean_size_mb);
  const auto big = make_text_job(p, 0, 2.0 * p.mean_size_mb);
  EXPECT_NEAR(big.stages[1].mean_task_time, 2.0 * small.stages[1].mean_task_time, 1e-12);
  EXPECT_NEAR(big.stages[0].mean_task_time, 2.0 * small.stages[0].mean_task_time, 1e-12);
}

TEST(TraceGenTest, GraphJobShape) {
  GraphClassParams p;
  p.shuffle_map_stages = 6;
  p.stage_tasks = 50;
  const auto spec = make_graph_job(p, 1, p.mean_size_mb);
  ASSERT_EQ(spec.stages.size(), 8u);  // setup + 6 ShuffleMap + result
  EXPECT_EQ(spec.stages[0].kind, cluster::StageKind::kSetup);
  for (int s = 1; s <= 6; ++s) {
    EXPECT_EQ(spec.stages[static_cast<std::size_t>(s)].kind, cluster::StageKind::kShuffleMap);
    EXPECT_EQ(spec.stages[static_cast<std::size_t>(s)].tasks, 50);
  }
  EXPECT_EQ(spec.stages[7].kind, cluster::StageKind::kResult);
}

TEST(TraceGenTest, ModelProfileConversion) {
  ClassWorkloadParams p;
  p.arrival_rate = 0.004;
  p.mean_size_mb = 500.0;
  p.map_tasks = 50;
  p.reduce_tasks = 20;
  p.map_seconds_per_mb = 0.2;
  p.setup_time_s = 8.0;
  p.setup_time_theta90_s = 4.0;
  const auto profile = to_model_profile(p, 20);
  EXPECT_EQ(profile.slots, 20);
  EXPECT_DOUBLE_EQ(profile.arrival_rate, 0.004);
  EXPECT_EQ(profile.map_task_pmf.size(), 50u);
  EXPECT_DOUBLE_EQ(profile.map_task_pmf.back(), 1.0);
  EXPECT_NEAR(profile.map_rate, 1.0 / 2.0, 1e-12);  // 500*0.2/50 = 2 s/task
  EXPECT_DOUBLE_EQ(profile.mean_overhead_theta0, 8.0);
  EXPECT_DOUBLE_EQ(profile.mean_overhead_theta90, 4.0);
}

TEST(TraceGenTest, OfferedLoadPositiveAndScales) {
  auto classes = two_classes();
  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(to_model_profile(c, 20));
  const std::vector<double> theta{0.0, 0.0};
  const double load = offered_load(profiles, theta);
  EXPECT_GT(load, 0.0);
  // Dropping strictly reduces the offered load.
  const std::vector<double> theta_drop{0.4, 0.0};
  EXPECT_LT(offered_load(profiles, theta_drop), load);
}

TEST(TraceGenTest, ScaleRatesToLoadHitsTarget) {
  auto classes = two_classes();
  const double factor = scale_rates_to_load(classes, 20, 0.8);
  EXPECT_GT(factor, 0.0);
  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(to_model_profile(c, 20));
  const std::vector<double> theta{0.0, 0.0};
  EXPECT_NEAR(offered_load(profiles, theta), 0.8, 1e-9);
  // Ratio between classes is preserved.
  EXPECT_NEAR(classes[0].arrival_rate / classes[1].arrival_rate, 9.0, 1e-9);
}

TEST(TraceGenTest, GraphScaleRatesToLoad) {
  std::vector<GraphClassParams> classes(2);
  classes[0].arrival_rate = 0.007;
  classes[1].arrival_rate = 0.003;
  scale_rates_to_load(classes, 20, 0.5);
  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(to_model_profile(c, 20));
  const std::vector<double> theta{0.0, 0.0};
  EXPECT_NEAR(offered_load(profiles, theta), 0.5, 1e-9);
}

TEST(TraceGenTest, BurstyTraceMatchesMeanRates) {
  auto classes = two_classes();
  TraceGenerator gen(9);
  const auto trace = gen.text_trace_bursty(classes, 30000, 1.8, 0.01);
  ASSERT_EQ(trace.size(), 30000u);
  const double horizon = trace.back().arrival_time;
  EXPECT_NEAR(30000.0 / horizon, 0.01, 0.001);  // total mean rate preserved
  std::size_t high = 0;
  for (const auto& e : trace) high += e.spec.priority;
  EXPECT_NEAR(static_cast<double>(high) / 30000.0, 0.1, 0.02);
}

TEST(TraceGenTest, BurstyTraceIsBurstier) {
  auto classes = two_classes();
  TraceGenerator gen_a(10), gen_b(10);
  const auto poisson = gen_a.text_trace_bursty(classes, 30000, 1.0, 0.01);
  const auto bursty = gen_b.text_trace_bursty(classes, 30000, 1.9, 0.001);
  const auto scv_of = [](const std::vector<cluster::TraceEntry>& trace) {
    dias::Welford acc;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      acc.add(trace[i].arrival_time - trace[i - 1].arrival_time);
    }
    return acc.variance() / (acc.mean() * acc.mean());
  };
  EXPECT_NEAR(scv_of(poisson), 1.0, 0.1);
  EXPECT_GT(scv_of(bursty), 1.5);
}

TEST(TraceGenTest, BurstyMmapMatchesConfiguredRates) {
  auto classes = two_classes();
  const auto mmap = TraceGenerator::bursty_mmap(classes, 1.5, 0.02);
  EXPECT_NEAR(mmap.arrival_rate(1), classes[0].arrival_rate, 1e-9);
  EXPECT_NEAR(mmap.arrival_rate(2), classes[1].arrival_rate, 1e-9);
  EXPECT_THROW(TraceGenerator::bursty_mmap(classes, 2.5, 0.02),
               dias::precondition_error);
  EXPECT_THROW(TraceGenerator::bursty_mmap(classes, 1.5, 0.0),
               dias::precondition_error);
}

TEST(TraceGenTest, PilotCalibrationHitsTargetUnderLogNormal) {
  auto classes = two_classes();
  for (auto& c : classes) {
    c.map_seconds_per_mb = 0.2;
    c.reduce_seconds_per_mb = 0.05;
  }
  const double factor = calibrate_rates_by_pilot(classes, 20, 0.7,
                                                 cluster::TaskTimeFamily::kLogNormal);
  EXPECT_GT(factor, 0.0);
  // Verify by simulation: utilization near the target at theta = 0.
  TraceGenerator gen(55);
  auto trace = gen.text_trace(classes, 6000);
  cluster::ClusterSimulator::Config config;
  config.slots = 20;
  config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
  config.warmup_jobs = 0;
  config.seed = 56;
  const auto result = cluster::simulate(config, std::move(trace));
  EXPECT_NEAR(result.utilization(), 0.7, 0.06);
}

TEST(TraceGenTest, PilotCalibrationValidation) {
  std::vector<ClassWorkloadParams> empty;
  EXPECT_THROW(
      calibrate_rates_by_pilot(empty, 20, 0.5, cluster::TaskTimeFamily::kLogNormal),
      dias::precondition_error);
  auto classes = two_classes();
  EXPECT_THROW(
      calibrate_rates_by_pilot(classes, 20, 1.5, cluster::TaskTimeFamily::kLogNormal),
      dias::precondition_error);
}

TEST(TraceGenTest, Validation) {
  TraceGenerator gen(1);
  EXPECT_THROW(gen.text_trace(std::vector<ClassWorkloadParams>{}, 10),
               dias::precondition_error);
  std::vector<ClassWorkloadParams> zero(1);
  zero[0].arrival_rate = 0.0;
  EXPECT_THROW(gen.text_trace(zero, 10), dias::precondition_error);
  auto classes = two_classes();
  EXPECT_THROW(gen.text_trace(classes, 0), dias::precondition_error);
  EXPECT_THROW(make_text_job(classes[0], 0, -1.0), dias::precondition_error);
}

class MixSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(MixSweepTest, EmpiricalMixTracksConfiguredShare) {
  const double high_share = GetParam();
  std::vector<ClassWorkloadParams> classes(2);
  classes[0].arrival_rate = (1.0 - high_share) * 0.01;
  classes[1].arrival_rate = high_share * 0.01;
  TraceGenerator gen(99);
  const auto trace = gen.text_trace(classes, 30000);
  std::size_t high = 0;
  for (const auto& e : trace) high += e.spec.priority;
  EXPECT_NEAR(static_cast<double>(high) / 30000.0, high_share, 0.012);
}

INSTANTIATE_TEST_SUITE_P(Shares, MixSweepTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace dias::workload
