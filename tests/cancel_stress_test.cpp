// TSAN/ASAN stress target for ISSUE 5: a cancel storm over live shuffle
// jobs with sprinting enabled. Deadline-driven cancellation races stage
// completion, the lock-free shuffle merge, and sprint-lease revocation;
// the suite asserts the system neither deadlocks nor leaks — every job
// carries a terminal outcome, the worker pool returns to its base size,
// and the energy budget's conservation invariant holds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "runtime/sprint_governor.hpp"

namespace dias {
namespace {

using namespace std::chrono_literals;
using core::AdmissionPolicy;
using core::ClassPolicy;
using core::DiasDispatcher;
using core::DispatcherOptions;
using core::JobOutcome;

// One shuffle-heavy job body: a reduce_by_key over enough partitions that
// a mid-stage cancel lands inside the shuffle write or merge phase.
void run_shuffle_job(engine::Engine& eng, const CancellationToken& token,
                     double theta, std::uint64_t salt) {
  eng.set_cancellation(token);
  eng.set_drop_ratio(theta);
  std::vector<std::pair<int, int>> data;
  data.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    data.emplace_back(static_cast<int>((i * 31 + static_cast<int>(salt)) % 97),
                      i);
  }
  const auto ds = eng.parallelize(std::move(data), 64);
  const auto reduced =
      eng.reduce_by_key(ds, [](int a, int b) { return a + b; }, 16);
  // Touch the result so the merge output stays live across the check.
  ASSERT_GT(reduced.total_size(), 0u);
}

TEST(CancelStressTest, CancelStormOverLiveShufflesConservesEverything) {
  engine::Engine eng([] {
    engine::Engine::Options o;
    o.workers = 4;
    o.reserve_workers = 4;
    o.seed = 11;
    return o;
  }());

  runtime::SprintGovernorConfig scfg;
  scfg.enabled = true;
  scfg.budget.base_power_w = 180.0;
  scfg.budget.sprint_power_w = 270.0;
  scfg.budget.budget_joules = 40.0;  // small: sprints also die by depletion
  scfg.budget.budget_cap_joules = 40.0;
  scfg.budget.replenish_watts = 20.0;
  scfg.timeout_s = {0.0, 0.005};  // class 0 sprints immediately
  runtime::SprintGovernor governor(scfg, eng.pool());

  // Tight class-0 deadline: many shuffle jobs are cancelled mid-flight.
  // Class 1 is deadline-free, so completions race the storm.
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kShedOldestLowest;
  opts.classes = {ClassPolicy{6, 0.03}, ClassPolicy{6,
                  std::numeric_limits<double>::infinity()}};
  DiasDispatcher dispatcher({0.1, 0.0}, opts);
  dispatcher.attach_sprint_governor(&governor);

  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kJobs = 60;
  std::atomic<int> bodies_entered{0};
  for (int i = 0; i < kJobs; ++i) {
    const auto priority = static_cast<std::size_t>(i % 2);
    dispatcher.submit(
        priority, DiasDispatcher::ContextJobFn(
                      [&, i](const DiasDispatcher::JobContext& ctx) {
                        ++bodies_entered;
                        run_shuffle_job(eng, ctx.token, ctx.theta,
                                        static_cast<std::uint64_t>(i));
                      }));
    if (i % 8 == 0) std::this_thread::sleep_for(1ms);
  }
  const auto records = dispatcher.drain();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // No deadlock: drain returned, every submitted job has a terminal
  // outcome, and the ones that ran either completed, were cancelled by
  // the deadline storm, or were shed by admission.
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kJobs));
  std::size_t completed = 0, cancelled = 0, shed = 0, failed = 0;
  for (const auto& r : records) {
    switch (r.outcome) {
      case JobOutcome::kCompleted: ++completed; break;
      case JobOutcome::kCancelled: ++cancelled; break;
      case JobOutcome::kShed: ++shed; break;
      case JobOutcome::kFailed: ++failed; break;
    }
  }
  EXPECT_EQ(failed, 0u) << "cancellation must unwind as kCancelled, not kFailed";
  EXPECT_GT(completed, 0u) << "deadline-free class must make progress";
  EXPECT_EQ(completed + cancelled + shed, static_cast<std::size_t>(kJobs));

  // No lease leak: every sprint grant was revoked, the pool is back at
  // its base width, and the governor is idle.
  EXPECT_FALSE(governor.sprinting());
  EXPECT_EQ(eng.pool().active_workers(), 4u);

  // Energy conservation: consumed never exceeds the initial budget plus
  // replenishment over the run (with slack for end-of-sprint rounding).
  const double cap = scfg.budget.budget_joules +
                     scfg.budget.replenish_watts * elapsed + 1.0;
  EXPECT_LE(governor.budget_consumed(), cap);
  EXPECT_GE(governor.budget_consumed(), 0.0);
  EXPECT_GE(governor.budget_level(), -1e-6);
  EXPECT_GT(bodies_entered.load(), 0);

  // The engine survives the storm: a clean follow-up job runs end-to-end.
  eng.clear_cancellation();
  eng.set_drop_ratio(0.0);
  const auto ds = eng.parallelize(std::vector<int>{1, 2, 3, 4}, 2);
  const auto out = eng.map(ds, [](const int& x) { return x * 2; });
  EXPECT_EQ(out.total_size(), 4u);
}

TEST(CancelStressTest, ExternalCancelRacesStageCompletion) {
  // Fire tokens from an external thread at random-ish offsets so the
  // cancel lands anywhere between stage entry and the final merge. TSAN
  // watches the token/pool/shuffle interactions; the asserts watch for
  // lost wakeups and leaked outcomes.
  engine::Engine eng([] {
    engine::Engine::Options o;
    o.workers = 4;
    o.seed = 29;
    return o;
  }());
  DiasDispatcher dispatcher({0.0});

  constexpr int kRounds = 40;
  std::vector<CancellationToken> tokens(kRounds);
  std::thread storm([&] {
    for (int i = 0; i < kRounds; ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(200 * (i % 7)));
      tokens[static_cast<std::size_t>(i)].request_cancel();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    dispatcher.submit(0, DiasDispatcher::ContextJobFn(
                             [&, i](const DiasDispatcher::JobContext&) {
                               // Job-owned token fired externally, not by
                               // the dispatcher watchdog.
                               run_shuffle_job(eng, tokens[static_cast<std::size_t>(i)],
                                               0.0, static_cast<std::uint64_t>(i));
                             }));
  }
  storm.join();
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kRounds));
  for (const auto& r : records) {
    EXPECT_TRUE(r.outcome == JobOutcome::kCompleted ||
                r.outcome == JobOutcome::kCancelled)
        << "unexpected outcome " << core::to_string(r.outcome) << ": " << r.error;
  }
  EXPECT_EQ(eng.pool().active_workers(), 4u);
}

}  // namespace
}  // namespace dias
