#include "workload/text_corpus.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/error.hpp"

namespace dias::workload {
namespace {

TEST(TextCorpusTest, GeneratesRequestedPosts) {
  TextCorpusParams params;
  params.posts = 123;
  params.seed = 1;
  const auto corpus = generate_text_corpus("anime", params);
  EXPECT_EQ(corpus.site, "anime");
  EXPECT_EQ(corpus.rows.size(), 123u);
  EXPECT_GT(corpus.bytes(), 123u * 10);
}

TEST(TextCorpusTest, RowsAreWellFormed) {
  TextCorpusParams params;
  params.posts = 50;
  const auto corpus = generate_text_corpus("coffee", params);
  for (const auto& row : corpus.rows) {
    EXPECT_EQ(row.rfind("<row ", 0), 0u) << row;
    EXPECT_NE(row.find("Body=\""), std::string::npos);
    EXPECT_NE(row.find("Site=\"coffee\""), std::string::npos);
    const std::string body = extract_post_body(row);
    EXPECT_FALSE(body.empty());
  }
}

TEST(TextCorpusTest, DeterministicPerSeed) {
  TextCorpusParams params;
  params.posts = 20;
  params.seed = 9;
  const auto a = generate_text_corpus("x", params);
  const auto b = generate_text_corpus("x", params);
  EXPECT_EQ(a.rows, b.rows);
  params.seed = 10;
  const auto c = generate_text_corpus("x", params);
  EXPECT_NE(a.rows, c.rows);
}

TEST(TextCorpusTest, WordFrequenciesAreSkewed) {
  TextCorpusParams params;
  params.posts = 2000;
  params.vocabulary = 500;
  params.zipf_exponent = 1.1;
  params.seed = 3;
  const auto corpus = generate_text_corpus("skew", params);
  std::unordered_map<std::string, int> counts;
  std::size_t total = 0;
  for (const auto& row : corpus.rows) {
    for (const auto& w : tokenize(extract_post_body(row))) {
      ++counts[w];
      ++total;
    }
  }
  int max_count = 0;
  for (const auto& [w, c] : counts) max_count = std::max(max_count, c);
  const double mean_count = static_cast<double>(total) / static_cast<double>(counts.size());
  EXPECT_GT(max_count, 5.0 * mean_count) << "Zipf corpus should have heavy hitters";
}

TEST(ExtractPostBodyTest, HandlesWellFormedAndMalformed) {
  EXPECT_EQ(extract_post_body("<row Id=\"1\" Body=\"a b c\"/>"), "a b c");
  EXPECT_EQ(extract_post_body("<row Id=\"1\"/>"), "");
  EXPECT_EQ(extract_post_body("<row Body=\"unterminated"), "");
  EXPECT_EQ(extract_post_body(""), "");
}

TEST(TokenizeTest, SplitsAndLowercases) {
  const auto words = tokenize("Hello, World! foo-bar baz42");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[1], "world");
  EXPECT_EQ(words[2], "foo");
  EXPECT_EQ(words[3], "bar");
  EXPECT_EQ(words[4], "baz42");
}

TEST(TokenizeTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("  ,.! ").empty());
}

TEST(TextCorpusTest, Validation) {
  TextCorpusParams params;
  params.posts = 0;
  EXPECT_THROW(generate_text_corpus("x", params), dias::precondition_error);
  params = {};
  params.vocabulary = 0;
  EXPECT_THROW(generate_text_corpus("x", params), dias::precondition_error);
  params = {};
  params.topic_boost = 0.5;
  EXPECT_THROW(generate_text_corpus("x", params), dias::precondition_error);
}

}  // namespace
}  // namespace dias::workload
