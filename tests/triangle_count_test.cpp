#include "analytics/triangle_count.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/graph_gen.hpp"

namespace dias::analytics {
namespace {

engine::Engine::Options eng_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 5;
  return o;
}

using workload::Edge;

TEST(TriangleCountTest, TriangleGraph) {
  const std::vector<Edge> k3{{0, 1}, {0, 2}, {1, 2}};
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(k3, 1);
  EXPECT_EQ(triangle_count(eng, ds).triangles, 1u);
}

TEST(TriangleCountTest, CompleteGraphK4) {
  const std::vector<Edge> k4{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(k4, 2);
  EXPECT_EQ(triangle_count(eng, ds).triangles, 4u);
}

TEST(TriangleCountTest, StarGraphHasNoTriangles) {
  std::vector<Edge> star;
  for (std::uint32_t i = 1; i <= 10; ++i) star.push_back({0, i});
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(star, 3);
  EXPECT_EQ(triangle_count(eng, ds).triangles, 0u);
}

TEST(TriangleCountTest, NonCanonicalEdgesHandled) {
  // The canonicalize stage must fix order and drop self loops.
  const std::vector<Edge> messy{{1, 0}, {2, 0}, {2, 1}, {3, 3}};
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(messy, 1);
  EXPECT_EQ(triangle_count(eng, ds).triangles, 1u);
}

TEST(TriangleCountTest, MatchesExactReferenceOnRmat) {
  workload::GraphParams params;
  params.scale = 9;
  params.edges = 4096;
  params.seed = 21;
  const auto edges = workload::generate_rmat_graph(params);
  const auto expected = workload::exact_triangle_count(edges);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 16);
  const auto result = triangle_count(eng, ds, 0.0);
  EXPECT_EQ(result.triangles, expected);
  EXPECT_GT(result.duration_s, 0.0);
}

TEST(TriangleCountTest, DroppingUndercounts) {
  workload::GraphParams params;
  params.scale = 10;
  params.edges = 16384;
  params.seed = 33;
  const auto edges = workload::generate_rmat_graph(params);
  const auto exact = workload::exact_triangle_count(edges);
  ASSERT_GT(exact, 0u);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 32);
  const auto dropped = triangle_count(eng, ds, 0.2);
  EXPECT_LT(dropped.triangles, exact);
  EXPECT_LT(dropped.tasks_run, dropped.tasks_total);
}

TEST(TriangleCountTest, PerStageDropCompounds) {
  // With three droppable stages at ratio theta, the count falls well below
  // (1 - theta) of the exact count.
  workload::GraphParams params;
  params.scale = 10;
  params.edges = 16384;
  params.seed = 44;
  const auto edges = workload::generate_rmat_graph(params);
  const auto exact = workload::exact_triangle_count(edges);
  ASSERT_GT(exact, 100u);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 32);
  const auto r = triangle_count(eng, ds, 0.2);
  const double retained = static_cast<double>(r.triangles) / static_cast<double>(exact);
  EXPECT_LT(retained, 0.8 + 0.1);  // at least one stage's worth of loss
  EXPECT_GT(retained, 0.2);        // but nowhere near zero
}

class StageDropSweep : public ::testing::TestWithParam<double> {};

TEST_P(StageDropSweep, ErrorGrowsWithStageDropRatio) {
  const double theta = GetParam();
  workload::GraphParams params;
  params.scale = 9;
  params.edges = 8192;
  params.seed = 55;
  const auto edges = workload::generate_rmat_graph(params);
  const auto exact = workload::exact_triangle_count(edges);
  ASSERT_GT(exact, 0u);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 50);
  const auto r = triangle_count(eng, ds, theta);
  EXPECT_LE(r.triangles, exact);
  if (theta >= 0.1) {
    EXPECT_LT(r.triangles, exact);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, StageDropSweep,
                         ::testing::Values(0.01, 0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace dias::analytics
