// Spill-determinism golden tests (ISSUE 6 satellite 1).
//
// The memory-elastic shuffle's contract: spilling is content-preserving.
// A finite memory_budget_bytes only changes WHERE a segment lives
// (resident vector vs BlockStore blocks), never its boundaries or entry
// order, so the merge phase — which visits segments in (src, seq) order —
// produces bitwise-identical output with or without spill, at any worker
// count. These tests pin that contract for reduce_by_key (float
// accumulation order!), group_by_key, and distinct across three budget
// regimes: unbounded, half the measured working set, and barely above a
// single segment (everything spills).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"

namespace dias {
namespace {

using KV = std::pair<std::uint64_t, double>;

class ShuffleSpillGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("dias_spill_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  storage::BlockStore make_store() {
    storage::BlockStoreOptions options;
    options.root = root_;
    options.block_bytes = 4096;
    return storage::BlockStore(options);
  }

  std::filesystem::path root_;
};

// Skewed (key, value) input: a few heavy keys plus a long uniform tail,
// so combiner buckets are uneven and flush at different times per slot.
std::vector<KV> skewed_pairs(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> tail(0, 4000);
  std::uniform_real_distribution<double> val(0.0, 1.0);
  std::vector<KV> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = (i % 5 == 0) ? (i % 7) : tail(rng);
    out.push_back({key, val(rng)});
  }
  return out;
}

engine::Engine::Options engine_opts(std::size_t workers) {
  engine::Engine::Options o;
  o.workers = workers;
  o.seed = 11;
  return o;
}

engine::ShuffleOptions shuffle_opts(std::size_t budget) {
  engine::ShuffleOptions s;
  s.target_buffer_bytes = 4096;
  s.memory_budget_bytes = budget;
  return s;
}

// Full partition structure, not just the multiset of entries: the merge
// contract covers bucket assignment AND within-bucket order.
template <typename T>
std::vector<std::vector<T>> materialize(const engine::Dataset<T>& ds) {
  std::vector<std::vector<T>> out;
  for (std::size_t p = 0; p < ds.partitions(); ++p) out.push_back(ds.partition(p));
  return out;
}

std::size_t working_set_bytes(const engine::Engine& eng) {
  std::size_t bytes = 0;
  for (const auto& s : eng.stage_log()) bytes += s.shuffle_bytes;
  return bytes;
}

std::size_t spilled_segments(const engine::Engine& eng) {
  std::size_t n = 0;
  for (const auto& s : eng.stage_log()) n += s.shuffle_spill_segments;
  return n;
}

std::size_t restored_segments(const engine::Engine& eng) {
  std::size_t n = 0;
  for (const auto& s : eng.stage_log()) n += s.shuffle_restored_segments;
  return n;
}

TEST_F(ShuffleSpillGoldenTest, ReduceByKeyIsBitwiseIdenticalAcrossBudgetsAndWorkers) {
  const auto input = skewed_pairs(20000, 101);
  auto store = make_store();
  std::size_t working_set = 0;

  auto run = [&](std::size_t workers, std::size_t budget) {
    storage::BlockStoreSpill spill(store, "rbk-w" + std::to_string(workers) + "-b" +
                                              std::to_string(budget));
    engine::Engine eng(engine_opts(workers));
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(input, 16);
    const auto result = eng.reduce_by_key(
        ds, [](double a, double b) { return a + b; }, 12, {}, shuffle_opts(budget));
    if (budget == 0) working_set = std::max(working_set, working_set_bytes(eng));
    if (budget != 0 && budget < working_set) {
      EXPECT_GT(spilled_segments(eng), 0u) << "budget " << budget << " never spilled";
      EXPECT_EQ(spilled_segments(eng), restored_segments(eng));
    }
    return materialize(result);
  };

  const auto reference = run(1, 0);
  ASSERT_GT(working_set, 0u);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t budget : {std::size_t{0}, working_set / 2, std::size_t{8192}}) {
      // Doubles compared with ==: accumulation order must be identical,
      // not merely the key sets.
      EXPECT_EQ(run(workers, budget), reference)
          << "workers=" << workers << " budget=" << budget;
    }
  }
}

TEST_F(ShuffleSpillGoldenTest, GroupByKeyPreservesValueOrderUnderSpill) {
  const auto input = skewed_pairs(12000, 202);
  auto store = make_store();
  std::size_t working_set = 0;

  auto run = [&](std::size_t workers, std::size_t budget) {
    storage::BlockStoreSpill spill(store, "gbk-w" + std::to_string(workers) + "-b" +
                                              std::to_string(budget));
    engine::Engine eng(engine_opts(workers));
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(input, 16);
    const auto result = eng.group_by_key(ds, 12, {}, shuffle_opts(budget));
    if (budget == 0) working_set = std::max(working_set, working_set_bytes(eng));
    if (budget != 0 && budget < working_set) {
      EXPECT_GT(spilled_segments(eng), 0u) << "budget " << budget << " never spilled";
    }
    return materialize(result);
  };

  const auto reference = run(1, 0);
  ASSERT_GT(working_set, 0u);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t budget : {std::size_t{0}, working_set / 2, std::size_t{8192}}) {
      EXPECT_EQ(run(workers, budget), reference)
          << "workers=" << workers << " budget=" << budget;
    }
  }
}

TEST_F(ShuffleSpillGoldenTest, DistinctKeepsFirstAppearanceOrderUnderSpill) {
  // Heavy duplication so the dedup scratch map flushes repeatedly.
  std::vector<std::string> input;
  std::mt19937_64 rng(303);
  std::uniform_int_distribution<int> pick(0, 1500);
  for (std::size_t i = 0; i < 15000; ++i) {
    input.push_back("element-" + std::to_string(pick(rng)) + "-padpadpadpad");
  }
  auto store = make_store();
  std::size_t working_set = 0;

  auto run = [&](std::size_t workers, std::size_t budget) {
    storage::BlockStoreSpill spill(store, "dst-w" + std::to_string(workers) + "-b" +
                                              std::to_string(budget));
    engine::Engine eng(engine_opts(workers));
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(input, 16);
    const auto result = eng.distinct(ds, 12, {}, shuffle_opts(budget));
    if (budget == 0) working_set = std::max(working_set, working_set_bytes(eng));
    return materialize(result);
  };

  const auto reference = run(1, 0);
  ASSERT_GT(working_set, 0u);
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (std::size_t budget : {std::size_t{0}, working_set / 2, std::size_t{8192}}) {
      EXPECT_EQ(run(workers, budget), reference)
          << "workers=" << workers << " budget=" << budget;
    }
  }
}

// Default-constructed ShuffleOptions pick their budget up from
// DIAS_SHUFFLE_BUDGET_BYTES, so the CI low-memory leg (-L spill with the
// env var set) drives this very test through the spill path while the
// regular leg runs it unbounded — same assertion either way.
TEST_F(ShuffleSpillGoldenTest, DefaultOptionsHonorEnvBudget) {
  const auto input = skewed_pairs(8000, 404);
  auto store = make_store();

  auto run = [&](std::size_t workers) {
    storage::BlockStoreSpill spill(store, "env-w" + std::to_string(workers));
    engine::Engine eng(engine_opts(workers));
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(input, 16);
    const auto result = eng.reduce_by_key(
        ds, [](double a, double b) { return a + b; }, 8);
    return materialize(result);
  };

  const auto reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(8), reference);
}

// Spill accounting is visible end to end: the sink's counters reach the
// stage log, and every spilled segment is restored exactly once (and its
// backing file released) during the merge.
TEST_F(ShuffleSpillGoldenTest, SpillCountersAndReleaseAreExact) {
  const auto input = skewed_pairs(20000, 505);
  auto store = make_store();
  storage::BlockStoreSpill spill(store, "acct");
  engine::Engine eng(engine_opts(4));
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(input, 16);
  (void)eng.reduce_by_key(
      ds, [](double a, double b) { return a + b; }, 12, {}, shuffle_opts(8192));

  const auto stats = spill.stats();
  EXPECT_GT(stats.segments_written, 0u);
  EXPECT_EQ(stats.segments_written, stats.segments_read);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.bytes_written, stats.bytes_read);
  EXPECT_EQ(spilled_segments(eng), stats.segments_written);
  EXPECT_EQ(restored_segments(eng), stats.segments_written);
  // All segment files were released after their single consumption.
  EXPECT_TRUE(store.list().empty());
}

}  // namespace
}  // namespace dias
