#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerSerializes) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool still usable afterwards.
  auto g = pool.submit([] {});
  EXPECT_NO_THROW(g.get());
}

TEST(ThreadPoolTest, RunIndexedCoversAllIndices) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> seen;
  pool.run_indexed(200, [&](std::size_t i) {
    std::lock_guard lock(mutex);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 199u);
}

TEST(ThreadPoolTest, RunIndexedZeroTasks) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_indexed(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPoolTest, RunIndexedWaitsForAllBeforeRethrow) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(40, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("task failed");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++completed;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
    EXPECT_EQ(completed.load(), 39);  // every other task still ran
  }
}

TEST(ThreadPoolTest, ActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.run_indexed(8, [&](std::size_t) {
    const int now = ++concurrent;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --concurrent;
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, NeedsAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool{0}, dias::precondition_error);
}

TEST(ThreadPoolTest, PendingCountsQueuedWork) {
  ThreadPool pool(2);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  // Occupy both workers, then queue five more tasks behind them.
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 2; ++i) futures.push_back(pool.submit([open] { open.wait(); }));
  // Wait until both blockers were dequeued.
  while (pool.pending() > 0) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) futures.push_back(pool.submit([] {}));
  EXPECT_EQ(pool.pending(), 5u);
  gate.set_value();
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.pending(), 0u);
}

// --- stress: the engine's fault path drives the pool from several threads --

TEST(ThreadPoolStressTest, ConcurrentSubmitAndRunIndexed) {
  ThreadPool pool(4);
  std::atomic<int> submitted_done{0};
  std::atomic<int> indexed_done{0};
  std::thread submitter_a([&] {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 300; ++i) {
      futures.push_back(pool.submit([&submitted_done] { ++submitted_done; }));
    }
    for (auto& f : futures) f.get();
  });
  std::thread submitter_b([&] {
    for (int i = 0; i < 300; ++i) pool.submit([&submitted_done] { ++submitted_done; }).get();
  });
  std::thread indexer([&] {
    pool.run_indexed(400, [&indexed_done](std::size_t) { ++indexed_done; });
  });
  pool.run_indexed(400, [&indexed_done](std::size_t) { ++indexed_done; });
  submitter_a.join();
  submitter_b.join();
  indexer.join();
  EXPECT_EQ(submitted_done.load(), 600);
  EXPECT_EQ(indexed_done.load(), 800);
}

TEST(ThreadPoolStressTest, ConcurrentRunIndexedExceptionsStayIsolated) {
  ThreadPool pool(4);
  std::atomic<int> ran_a{0};
  std::atomic<int> ran_b{0};
  std::atomic<bool> caught_a{false};
  std::thread other([&] {
    try {
      pool.run_indexed(100, [&ran_a](std::size_t i) {
        if (i == 13) throw std::runtime_error("a failed");
        ++ran_a;
      });
    } catch (const std::runtime_error&) {
      caught_a = true;
    }
  });
  // A clean run on the main thread must not see the other run's error.
  EXPECT_NO_THROW(pool.run_indexed(100, [&ran_b](std::size_t) { ++ran_b; }));
  other.join();
  EXPECT_TRUE(caught_a.load());
  EXPECT_EQ(ran_a.load(), 99);  // all of a's other tasks still ran
  EXPECT_EQ(ran_b.load(), 100);
}

TEST(ThreadPoolStressTest, DestructionDrainsQueuedWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++completed;
      });
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(completed.load(), 200);
}

TEST(ThreadPoolStressTest, ManyProducersManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        auto f = pool.submit([&counter] { ++counter; });
        std::lock_guard lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& p : producers) p.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 2000);
}

// --- elastic pool: reserve slots, slot leases, sprint-driven resizes -------

TEST(ElasticThreadPoolTest, ReserveSlotsStartDormant) {
  ThreadPool pool(2, 2);
  EXPECT_EQ(pool.workers(), 4u);        // per-slot containers size to this
  EXPECT_EQ(pool.base_workers(), 2u);
  EXPECT_EQ(pool.active_workers(), 2u);
  // Only the base slots pull tasks: peak concurrency stays at 2.
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.run_indexed(12, [&](std::size_t) {
    const int now = ++concurrent;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    --concurrent;
  });
  EXPECT_LE(peak.load(), 2);
}

TEST(ElasticThreadPoolTest, LeaseGrantsClampToReserve) {
  ThreadPool pool(2, 2);
  EXPECT_EQ(pool.lease_extra_workers(5), 2u);
  EXPECT_EQ(pool.active_workers(), 4u);
  EXPECT_EQ(pool.lease_extra_workers(1), 0u);  // reserve exhausted
  pool.release_extra_workers(2);
  EXPECT_EQ(pool.active_workers(), 2u);
  EXPECT_EQ(pool.lease_extra_workers(1), 1u);
  pool.release_extra_workers(1);
  // Releasing below the base floor is a contract violation.
  EXPECT_THROW(pool.release_extra_workers(1), dias::precondition_error);
}

TEST(ElasticThreadPoolTest, LeaseWidensStageMidFlight) {
  ThreadPool pool(1, 3);
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  // Four tasks that only finish once all four run concurrently — possible
  // only if the lease activates the reserve while the stage is in flight.
  std::thread stage([&] {
    pool.run_indexed(4, [&](std::size_t) {
      std::unique_lock lock(mutex);
      ++arrived;
      cv.notify_all();
      cv.wait(lock, [&] { return arrived == 4; });
    });
  });
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return arrived >= 1; });  // stage is running
  }
  EXPECT_EQ(pool.lease_extra_workers(3), 3u);
  stage.join();
  EXPECT_EQ(arrived, 4);
  pool.release_extra_workers(3);
}

TEST(ElasticThreadPoolTest, SlotIdsStableAndDistinctAcrossLease) {
  ThreadPool pool(2, 2);
  SlotLease lease(pool, 2);
  ASSERT_EQ(lease.granted(), 2u);
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::set<std::size_t> slots;
  pool.run_indexed(4, [&](std::size_t) {
    std::unique_lock lock(mutex);
    slots.insert(pool.current_slot());
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 4; });
  });
  // All four slots ran concurrently under stable, distinct ids covering
  // exactly 0..workers()-1 — the invariant per-slot shuffle buffers need.
  EXPECT_EQ(slots, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ElasticThreadPoolTest, SlotLeaseRaiiReleasesOnScopeExit) {
  ThreadPool pool(2, 3);
  {
    SlotLease lease(pool, 2);
    EXPECT_EQ(lease.granted(), 2u);
    EXPECT_EQ(pool.active_workers(), 4u);
    SlotLease moved = std::move(lease);
    EXPECT_EQ(moved.granted(), 2u);
    EXPECT_EQ(pool.active_workers(), 4u);
  }
  EXPECT_EQ(pool.active_workers(), 2u);
}

TEST(ElasticThreadPoolTest, MetricsTrackActiveWorkers) {
  obs::Registry reg;
  ThreadPool pool(2, 2);
  pool.attach_metrics(reg, "pool");
  EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 4.0);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.active_workers").value(), 2.0);
  SlotLease lease(pool, 2);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.active_workers").value(), 4.0);
  lease.reset();
  EXPECT_DOUBLE_EQ(reg.gauge("pool.active_workers").value(), 2.0);
}

// Resize churn while stages and ad-hoc submissions race — the TSAN target
// for ElasticThreadPool (lease/release vs worker gating vs queue traffic).
TEST(ThreadPoolStressTest, LeaseReleaseChurnWhileRunning) {
  ThreadPool pool(2, 4);
  std::atomic<bool> stop{false};
  std::atomic<int> indexed_done{0};
  std::atomic<int> submitted_done{0};
  std::thread churner([&] {
    while (!stop.load()) {
      const std::size_t got = pool.lease_extra_workers(4);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      pool.release_extra_workers(got);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  std::thread submitter([&] {
    while (!stop.load()) {
      pool.submit([&submitted_done] { ++submitted_done; }).get();
    }
  });
  for (int round = 0; round < 30; ++round) {
    pool.run_indexed(64, [&indexed_done](std::size_t) {
      ++indexed_done;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
  }
  stop = true;
  churner.join();
  submitter.join();
  EXPECT_EQ(indexed_done.load(), 30 * 64);
  EXPECT_GT(submitted_done.load(), 0);
}

// --- wave submission (ISSUE 9): shutdown / cancellation / lease races ------

// Destroying the pool while a wave is still queued behind blocked workers
// must drain the wave, not drop it: every index runs exactly once and the
// stage caller unblocks.
TEST(WaveStressTest, ShutdownWithPendingWaveDrainsAllIndices) {
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<std::uint8_t>> runs(kCount);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::optional<ThreadPool> pool;
  pool.emplace(2);
  // Park both workers so the wave cannot start.
  std::vector<std::future<void>> blockers;
  for (int i = 0; i < 2; ++i) blockers.push_back(pool->submit([open] { open.wait(); }));
  while (pool->pending() > 0) std::this_thread::yield();
  std::thread stage([&] {
    pool->run_indexed(kCount, [&](std::size_t i) { runs[i].fetch_add(1); });
  });
  // One queue entry for the whole 64-index wave.
  while (pool->pending() == 0) std::this_thread::yield();
  EXPECT_EQ(pool->pending(), 1u);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    gate.set_value();
  });
  pool.reset();  // destructor races the release; the wave must still drain
  stage.join();
  releaser.join();
  for (auto& f : blockers) f.get();
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(runs[i].load(), 1u) << "index " << i;
  }
}

// Cancellation mid-wave: started bodies finish, no index runs twice, the
// abandoned remainder never runs, and the workers come free for new work.
TEST(WaveStressTest, CancellationMidWaveIsExactlyOncePerStartedIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 5000;
  std::vector<std::atomic<std::uint8_t>> runs(kCount);
  std::atomic<int> executed{0};
  CancellationToken token;
  pool.run_indexed(
      kCount,
      [&](std::size_t i) {
        if (executed.fetch_add(1) == 200) token.request_cancel();
        runs[i].fetch_add(1);
      },
      &token);
  int total = 0;
  for (std::size_t i = 0; i < kCount; ++i) {
    const int n = runs[i].load();
    ASSERT_LE(n, 1) << "index " << i << " ran twice";
    total += n;
  }
  EXPECT_EQ(total, executed.load());
  EXPECT_LT(total, static_cast<int>(kCount));  // the tail really was abandoned
  EXPECT_GE(total, 201);                       // everything started did finish
  // The pool is fully reusable after an abandoned wave.
  std::atomic<int> after{0};
  pool.run_indexed(100, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 100);
}

// A lease granted mid-wave must wake the reserve into the SAME wave (no
// lost wakeup) without ever double-running an index.
TEST(WaveStressTest, LeaseGrowthMidWaveNoLostWakeupNoDoubleRun) {
  ThreadPool pool(1, 3);
  constexpr std::size_t kCount = 256;
  std::vector<std::atomic<std::uint8_t>> runs(kCount);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> started{0};
  std::thread stage([&] {
    pool.run_indexed(kCount, [&](std::size_t i) {
      ++started;
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      runs[i].fetch_add(1);
      --concurrent;
    });
  });
  while (started.load() == 0) std::this_thread::yield();
  EXPECT_EQ(pool.lease_extra_workers(3), 3u);
  stage.join();
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(runs[i].load(), 1u) << "index " << i;
  }
  // The reserve really joined the in-flight wave.
  EXPECT_GE(peak.load(), 2);
  pool.release_extra_workers(3);
}

// A stage body calling run_indexed on its own pool must never deadlock:
// the worker lends its slot to the nested wave (caller-lane participation),
// so progress is guaranteed even with every worker inside the outer wave.
TEST(WaveStressTest, NestedRunIndexedOnOwnPoolCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_indexed(4, [&](std::size_t) {
    pool.run_indexed(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

// The legacy one-submit-per-lane path stays available behind the ctor flag
// and keeps the same contract (the scale battery compares result bytes of
// both modes; this pins the executable behavior).
TEST(WaveStressTest, LegacySubmissionPathKeepsContract) {
  ThreadPool pool(4, 0, /*batched_waves=*/false);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<std::uint8_t>> runs(kCount);
  pool.run_indexed(kCount, [&](std::size_t i) { runs[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(runs[i].load(), 1u) << "index " << i;
  }
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run_indexed(100,
                                [&](std::size_t i) {
                                  if (i == 13) throw std::runtime_error("boom");
                                  ++ran;
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 99);
}

// Many concurrent waves from many threads: waves queue FIFO, each retires
// exactly once, and executed-task accounting stays exact.
TEST(WaveStressTest, ConcurrentWavesFromManyThreadsAllComplete) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_executed();
  std::atomic<int> total{0};
  std::vector<std::thread> stages;
  for (int t = 0; t < 6; ++t) {
    stages.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.run_indexed(37, [&](std::size_t) { ++total; });
      }
    });
  }
  for (auto& s : stages) s.join();
  EXPECT_EQ(total.load(), 6 * 20 * 37);
  EXPECT_EQ(pool.tasks_executed() - before, 6u * 20u * 37u);
}

// --- chaos stall injection (ISSUE 10 satellite c) --------------------------

// Every lane stalls before every body, yet the wave completes each index
// exactly once — injected stalls are latency, never lost or doubled work.
TEST(WaveChaosTest, MidWaveStallsPreserveExactlyOnceExecution) {
  chaos::ChaosSchedule schedule;
  schedule.seed = 7;
  schedule.points.push_back(
      {chaos::points::kPoolWave,
       chaos::PointSpec{/*rate=*/0.5, chaos::Shape::kStall, /*stall_ms=*/5.0}});
  chaos::ScopedChaos scoped(schedule);

  ThreadPool pool(4);
  constexpr std::size_t kCount = 200;
  std::vector<std::atomic<std::uint8_t>> runs(kCount);
  pool.run_indexed(kCount, [&](std::size_t i) { runs[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(runs[i].load(), 1u) << "index " << i;
  }
}

// The hardened latch: a cancelled run_indexed whose wave no lane can ever
// enter (the only worker is wedged on an unrelated task) must return by
// retiring the wave itself instead of waiting for a lane that will never
// come. Pre-hardening this hangs forever — the blocker is only released
// AFTER run_indexed returns.
TEST(WaveChaosTest, CancelledWaveWithWedgedLaneCannotHangRunIndexed) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto released = release.get_future().share();
  auto blocker = pool.submit([released] { released.wait(); });

  CancellationToken token;
  token.request_cancel();  // fired before the wave is even queued
  std::atomic<int> ran{0};
  pool.run_indexed(64, [&](std::size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0);  // no lane ever entered, nothing executed

  release.set_value();  // only now may the worker come free
  blocker.get();
  // The abandoned wave descriptor must not poison the queue afterwards.
  std::atomic<int> after{0};
  pool.run_indexed(32, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 32);
}

// Lanes mid-stall when the token fires: the injected sleep is cancel-aware
// and bounded, so the wave drains promptly instead of serving out the full
// stall schedule.
TEST(WaveChaosTest, CancellationCutsInjectedStallsShort) {
  chaos::ChaosSchedule schedule;
  schedule.seed = 11;
  schedule.points.push_back(
      {chaos::points::kPoolWave,
       chaos::PointSpec{/*rate=*/1.0, chaos::Shape::kStall, /*stall_ms=*/1500.0}});
  chaos::ScopedChaos scoped(schedule);

  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;  // 64 × 1.5 s serial worst case
  CancellationToken token;
  std::atomic<int> ran{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token.request_cancel();
  });
  pool.run_indexed(kCount, [&](std::size_t) { ++ran; }, &token);
  firer.join();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Generous bound for loaded CI machines: well under even four full
  // uncancelled stalls, let alone the 24 s serial schedule.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            5000);
  EXPECT_LT(ran.load(), static_cast<int>(kCount));
}

}  // namespace
}  // namespace dias::engine
