#include "engine/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/error.hpp"

namespace dias::engine {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleWorkerSerializes) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // Pool still usable afterwards.
  auto g = pool.submit([] {});
  EXPECT_NO_THROW(g.get());
}

TEST(ThreadPoolTest, RunIndexedCoversAllIndices) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::size_t> seen;
  pool.run_indexed(200, [&](std::size_t i) {
    std::lock_guard lock(mutex);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 199u);
}

TEST(ThreadPoolTest, RunIndexedZeroTasks) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.run_indexed(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPoolTest, RunIndexedWaitsForAllBeforeRethrow) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(40, [&](std::size_t i) {
      if (i == 5) throw std::runtime_error("task failed");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++completed;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
    EXPECT_EQ(completed.load(), 39);  // every other task still ran
  }
}

TEST(ThreadPoolTest, ActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.run_indexed(8, [&](std::size_t) {
    const int now = ++concurrent;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --concurrent;
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, NeedsAtLeastOneWorker) {
  EXPECT_THROW(ThreadPool{0}, dias::precondition_error);
}

}  // namespace
}  // namespace dias::engine
