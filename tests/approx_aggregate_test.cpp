#include "analytics/approx_aggregate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dias::analytics {
namespace {

engine::Engine::Options eng_opts(std::uint64_t seed = 7) {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = seed;
  return o;
}

std::vector<double> heterogeneous_data(std::size_t n, std::uint64_t seed) {
  // Values with per-region drift so partitions differ (cluster sampling has
  // something to estimate across).
  Rng rng(seed);
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double region = static_cast<double>(i) / static_cast<double>(n);
    data[i] = 10.0 + 5.0 * region + rng.normal(0.0, 1.0);
  }
  return data;
}

TEST(ApproxAggregateTest, ExactWhenNothingDropped) {
  engine::Engine eng(eng_opts());
  const auto data = heterogeneous_data(5000, 1);
  const double truth = std::accumulate(data.begin(), data.end(), 0.0);
  const auto ds = eng.parallelize(data, 25);
  const auto est = approx_sum(eng, ds, [](const double& x) { return x; }, 0.0);
  EXPECT_NEAR(est.estimate, truth, 1e-6);
  EXPECT_DOUBLE_EQ(est.standard_error, 0.0);  // census: no sampling error
  EXPECT_EQ(est.partitions_used, 25u);
  EXPECT_TRUE(est.contains(truth));
}

TEST(ApproxAggregateTest, SumEstimateNearTruthWithHonestInterval) {
  engine::Engine eng(eng_opts(3));
  const auto data = heterogeneous_data(20000, 2);
  const double truth = std::accumulate(data.begin(), data.end(), 0.0);
  const auto ds = eng.parallelize(data, 50);
  const auto est = approx_sum(eng, ds, [](const double& x) { return x; }, 0.4);
  EXPECT_EQ(est.partitions_used, 30u);
  EXPECT_GT(est.standard_error, 0.0);
  // The estimate should be within a few CI widths of the truth.
  EXPECT_NEAR(est.estimate, truth, 5.0 * est.ci_half_width() + 1e-9);
}

TEST(ApproxAggregateTest, SumIsUnbiasedAcrossRuns) {
  const auto data = heterogeneous_data(10000, 4);
  const double truth = std::accumulate(data.begin(), data.end(), 0.0);
  Welford estimates;
  for (int rep = 0; rep < 60; ++rep) {
    engine::Engine eng(eng_opts(100 + static_cast<std::uint64_t>(rep)));
    const auto ds = eng.parallelize(data, 40);
    estimates.add(approx_sum(eng, ds, [](const double& x) { return x; }, 0.5).estimate);
  }
  // Mean of the estimates converges on the truth (unbiasedness).
  EXPECT_NEAR(estimates.mean() / truth, 1.0, 0.01);
}

TEST(ApproxAggregateTest, ConfidenceIntervalCoversAtNominalRate) {
  const auto data = heterogeneous_data(10000, 5);
  const double truth = std::accumulate(data.begin(), data.end(), 0.0);
  int covered = 0;
  const int reps = 120;
  for (int rep = 0; rep < reps; ++rep) {
    engine::Engine eng(eng_opts(500 + static_cast<std::uint64_t>(rep)));
    const auto ds = eng.parallelize(data, 40);
    const auto est = approx_sum(eng, ds, [](const double& x) { return x; }, 0.5);
    if (est.contains(truth)) ++covered;
  }
  // Nominal 95%; allow slack for the normal approximation and small m.
  EXPECT_GE(covered, static_cast<int>(0.85 * reps));
}

TEST(ApproxAggregateTest, CountEstimatesDatasetSize) {
  engine::Engine eng(eng_opts(6));
  const auto data = heterogeneous_data(12000, 7);
  const auto ds = eng.parallelize(data, 30);
  const auto est = approx_count(eng, ds, 0.3);
  EXPECT_NEAR(est.estimate, 12000.0, 4.0 * est.ci_half_width() + 1.0);
  EXPECT_EQ(est.partitions_used, 21u);
}

TEST(ApproxAggregateTest, MeanRatioEstimatorIsTight) {
  // The ratio estimator's interval must be much tighter than the sum's
  // relative interval: dropped-partition identity cancels.
  engine::Engine eng(eng_opts(8));
  const auto data = heterogeneous_data(20000, 9);
  const double truth = std::accumulate(data.begin(), data.end(), 0.0) /
                       static_cast<double>(data.size());
  const auto ds = eng.parallelize(data, 50);
  const auto mean_est = approx_mean(eng, ds, [](const double& x) { return x; }, 0.4);
  EXPECT_NEAR(mean_est.estimate, truth, 0.05 * truth);
  EXPECT_GT(mean_est.standard_error, 0.0);
  EXPECT_LT(mean_est.relative_error_percent(), 10.0);
}

TEST(ApproxAggregateTest, HigherDropWidensInterval) {
  const auto data = heterogeneous_data(20000, 10);
  double prev_width = 0.0;
  for (double theta : {0.2, 0.5, 0.8}) {
    engine::Engine eng(eng_opts(11));
    const auto ds = eng.parallelize(data, 50);
    const auto est = approx_sum(eng, ds, [](const double& x) { return x; }, theta);
    EXPECT_GE(est.ci_half_width(), prev_width - 1e-9) << "theta=" << theta;
    prev_width = est.ci_half_width();
  }
}

TEST(ApproxAggregateTest, EstimatorValidation) {
  EXPECT_THROW(detail::estimate_total({}, 10), dias::precondition_error);
  EXPECT_THROW(detail::estimate_total({1.0, 2.0}, 1), dias::precondition_error);
  detail::ClusterSums bad;
  bad.values = {1.0};
  bad.total_partitions = 4;
  EXPECT_THROW(detail::estimate_ratio(bad), dias::precondition_error);
}

}  // namespace
}  // namespace dias::analytics
