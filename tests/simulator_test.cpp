#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace dias::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.is_pending(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel is harmless
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelFromWithinEvent) {
  Simulator sim;
  bool fired = false;
  const EventId later = sim.schedule_at(2.0, [&] { fired = true; });
  sim.schedule_at(1.0, [&] { sim.cancel(later); });
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1.0); });
  sim.schedule_at(2.0, [&] { fired.push_back(2.0); });
  sim.schedule_at(5.0, [&] { fired.push_back(5.0); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulatorTest, EventsCanScheduleChains) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(SimulatorTest, PendingCountTracksQueue) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, Preconditions) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), dias::precondition_error);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), dias::precondition_error);
  EXPECT_THROW(sim.run_until(1.0), dias::precondition_error);
  EXPECT_THROW(sim.schedule_at(10.0, std::function<void()>{}), dias::precondition_error);
}

}  // namespace
}  // namespace dias::sim
