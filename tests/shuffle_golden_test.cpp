// Golden determinism tests for the two-phase shuffle: the three Fig. 6/10
// workloads (word count, PageRank, triangle count) run twice with the same
// seed must produce *identical* results — including bitwise-equal
// floating-point PageRank scores, which the merge phase guarantees by
// visiting shuffle segments in (source partition, flush) order rather than
// thread-arrival order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/page_rank.hpp"
#include "analytics/triangle_count.hpp"
#include "analytics/word_count.hpp"
#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"
#include "workload/text_corpus.hpp"

namespace dias {
namespace {

engine::Engine::Options engine_opts(std::uint64_t seed) {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = seed;
  return o;
}

std::vector<workload::Edge> small_graph() {
  workload::GraphParams params;
  params.scale = 9;
  params.edges = 6u * (1u << 9);
  params.seed = 77;
  return workload::generate_rmat_graph(params);
}

TEST(ShuffleGoldenTest, WordCountIsIdenticalAcrossRuns) {
  workload::TextCorpusParams params;
  params.posts = 800;
  params.vocabulary = 1200;
  params.seed = 5;
  const auto corpus = workload::generate_text_corpus("golden", params);
  auto run = [&] {
    engine::Engine eng(engine_opts(17));
    const auto ds = eng.parallelize(corpus.rows, 20);
    return analytics::word_count(eng, ds, 8, /*drop_override=*/0.3);
  };
  const auto first = run();
  const auto second = run();
  // Same drop selection (same engine seed) and same shuffle result.
  EXPECT_EQ(first.map_tasks_run, second.map_tasks_run);
  EXPECT_EQ(first.counts, second.counts);
  EXPECT_EQ(first.rescaled_counts(), second.rescaled_counts());
}

TEST(ShuffleGoldenTest, PageRankIsBitwiseIdenticalAcrossRuns) {
  const auto edges = small_graph();
  auto run = [&] {
    engine::Engine eng(engine_opts(29));
    const auto ds = eng.parallelize(edges, 16);
    analytics::PageRankOptions options;
    options.iterations = 4;
    options.partitions = 12;
    options.stage_drop_ratio = 0.2;
    return analytics::page_rank(eng, ds, options);
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.ranks.size(), second.ranks.size());
  for (const auto& [vertex, rank] : first.ranks) {
    const auto it = second.ranks.find(vertex);
    ASSERT_NE(it, second.ranks.end()) << "vertex " << vertex;
    // Bitwise: the double accumulation order is deterministic.
    EXPECT_EQ(rank, it->second) << "vertex " << vertex;
  }
}

TEST(ShuffleGoldenTest, TriangleCountIsIdenticalAcrossRuns) {
  const auto edges = small_graph();
  auto run = [&] {
    engine::Engine eng(engine_opts(41));
    const auto ds = eng.parallelize(edges, 16);
    return analytics::triangle_count(eng, ds, /*stage_drop_ratio=*/0.2);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.triangles, second.triangles);
  EXPECT_EQ(first.tasks_run, second.tasks_run);
  // Sanity: dropping really happened, so determinism covers the
  // find_missing_partitions path too.
  EXPECT_LT(first.tasks_run, first.tasks_total);
}

// The exact (theta = 0) triangle count through the new shuffle still
// matches the reference node-iterator implementation.
TEST(ShuffleGoldenTest, ExactTriangleCountMatchesReference) {
  const auto edges = small_graph();
  const std::uint64_t expected = workload::exact_triangle_count(edges);
  engine::Engine eng(engine_opts(3));
  const auto ds = eng.parallelize(edges, 16);
  const auto result = analytics::triangle_count(eng, ds, 0.0);
  EXPECT_EQ(result.triangles, expected);
}

}  // namespace
}  // namespace dias
