#include "model/response_time_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace dias::model {
namespace {

JobClassProfile small_profile(double lambda) {
  JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(8, 0.0);
  p.map_task_pmf.back() = 1.0;  // 8 map tasks
  p.reduce_task_pmf.assign(2, 0.0);
  p.reduce_task_pmf.back() = 1.0;  // 2 reduce tasks
  p.map_rate = 1.0;
  p.reduce_rate = 1.0;
  p.shuffle_rate = 2.0;
  p.mean_overhead_theta0 = 2.0;
  p.mean_overhead_theta90 = 1.0;
  return p;
}

TEST(ResponseTimeModelTest, OverheadInterpolation) {
  const auto p = small_profile(0.01);
  EXPECT_NEAR(ResponseTimeModel::interpolated_overhead(p, 0.0), 2.0, 1e-12);
  EXPECT_NEAR(ResponseTimeModel::interpolated_overhead(p, 0.9), 1.0, 1e-12);
  EXPECT_NEAR(ResponseTimeModel::interpolated_overhead(p, 0.45), 1.5, 1e-12);
  // Clamped beyond the profiled endpoint.
  EXPECT_NEAR(ResponseTimeModel::interpolated_overhead(p, 1.0), 1.0, 1e-12);
}

TEST(ResponseTimeModelTest, ProcessingTimeDecreasesWithTheta) {
  const auto p = small_profile(0.01);
  double prev = 1e300;
  for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double mean = ResponseTimeModel::processing_time(p, theta).mean();
    EXPECT_LT(mean, prev);
    prev = mean;
  }
}

TEST(ResponseTimeModelTest, SprintSpeedupScalesProcessing) {
  auto p = small_profile(0.01);
  const double base = ResponseTimeModel::processing_time(p, 0.0).mean();
  p.sprint_speedup = 2.0;
  const double sprinted = ResponseTimeModel::processing_time(p, 0.0).mean();
  EXPECT_NEAR(sprinted, base / 2.0, 1e-9);
}

TEST(ResponseTimeModelTest, PredictTwoClasses) {
  const std::vector<JobClassProfile> classes{small_profile(0.02), small_profile(0.005)};
  const std::vector<double> theta{0.2, 0.0};
  const auto pred =
      ResponseTimeModel::predict(classes, theta, Discipline::kNonPreemptive);
  ASSERT_EQ(pred.per_class.size(), 2u);
  for (const auto& c : pred.per_class) {
    EXPECT_TRUE(c.stable);
    EXPECT_GT(c.mean_processing, 0.0);
    EXPECT_GE(c.mean_response, c.mean_processing);
    EXPECT_NEAR(c.mean_response, c.mean_waiting + c.mean_processing, 1e-9);
  }
  // High class (index 1) waits less than the low class.
  EXPECT_LT(pred.per_class[1].mean_waiting, pred.per_class[0].mean_waiting + 1e-12);
  EXPECT_NEAR(pred.total_utilization,
              pred.per_class[0].utilization + pred.per_class[1].utilization, 1e-12);
}

TEST(ResponseTimeModelTest, DroppingLowClassHelpsHighClassUnderNp) {
  // Under NP the high class waits behind low-class executions; deflating
  // the low class shortens that wait.
  const std::vector<JobClassProfile> classes{small_profile(0.03), small_profile(0.01)};
  const auto exact = ResponseTimeModel::predict(classes, std::vector<double>{0.0, 0.0},
                                                Discipline::kNonPreemptive);
  const auto deflated = ResponseTimeModel::predict(classes, std::vector<double>{0.4, 0.0},
                                                   Discipline::kNonPreemptive);
  EXPECT_LT(deflated.per_class[1].mean_response, exact.per_class[1].mean_response);
  EXPECT_LT(deflated.per_class[0].mean_response, exact.per_class[0].mean_response);
}

TEST(ResponseTimeModelTest, DisciplinesOrderHighClassLatency) {
  const std::vector<JobClassProfile> classes{small_profile(0.03), small_profile(0.01)};
  const std::vector<double> theta{0.0, 0.0};
  const auto np = ResponseTimeModel::predict(classes, theta, Discipline::kNonPreemptive);
  const auto pr = ResponseTimeModel::predict(classes, theta, Discipline::kPreemptiveResume);
  // Preemption strictly helps the high class.
  EXPECT_LT(pr.per_class[1].mean_response, np.per_class[1].mean_response);
}

TEST(ResponseTimeModelTest, PreemptiveRepeatRunsAndCostsMore) {
  const std::vector<JobClassProfile> classes{small_profile(0.02), small_profile(0.005)};
  const std::vector<double> theta{0.0, 0.0};
  const auto repeat = ResponseTimeModel::predict(classes, theta, Discipline::kPreemptiveRepeat);
  const auto resume = ResponseTimeModel::predict(classes, theta, Discipline::kPreemptiveResume);
  ASSERT_TRUE(repeat.per_class[0].stable);
  EXPECT_GE(repeat.per_class[0].mean_response, resume.per_class[0].mean_response - 1e-9);
}

TEST(ResponseTimeModelTest, Validation) {
  const std::vector<JobClassProfile> classes{small_profile(0.01)};
  EXPECT_THROW(ResponseTimeModel::predict(classes, std::vector<double>{0.1, 0.2},
                                          Discipline::kNonPreemptive),
               dias::precondition_error);
  EXPECT_THROW(ResponseTimeModel::predict(std::vector<JobClassProfile>{},
                                          std::vector<double>{}, Discipline::kNonPreemptive),
               dias::precondition_error);
  auto bad = small_profile(0.01);
  bad.sprint_speedup = 0.5;
  EXPECT_THROW(ResponseTimeModel::processing_time(bad, 0.0), dias::precondition_error);
}

class ThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweep, ResponseMonotoneInLowClassTheta) {
  const double theta = GetParam();
  const std::vector<JobClassProfile> classes{small_profile(0.03), small_profile(0.01)};
  const auto base = ResponseTimeModel::predict(classes, std::vector<double>{0.0, 0.0},
                                               Discipline::kNonPreemptive);
  const auto dropped = ResponseTimeModel::predict(classes, std::vector<double>{theta, 0.0},
                                                  Discipline::kNonPreemptive);
  EXPECT_LE(dropped.per_class[0].mean_response, base.per_class[0].mean_response + 1e-9);
  EXPECT_LE(dropped.per_class[1].mean_response, base.per_class[1].mean_response + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8));

}  // namespace
}  // namespace dias::model
