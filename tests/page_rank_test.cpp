#include "analytics/page_rank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "workload/graph_gen.hpp"

namespace dias::analytics {
namespace {

engine::Engine::Options eng_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 13;
  return o;
}

using workload::Edge;

TEST(PageRankTest, RanksSumToOne) {
  workload::GraphParams params;
  params.scale = 8;
  params.edges = 2048;
  params.seed = 5;
  const auto edges = workload::generate_rmat_graph(params);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 8);
  PageRankOptions options;
  options.iterations = 15;
  const auto result = page_rank(eng, ds, options);
  double total = 0.0;
  for (const auto& [v, r] : result.ranks) {
    EXPECT_GT(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 0.02);
  EXPECT_EQ(result.iterations, 15);
  EXPECT_GT(result.duration_s, 0.0);
}

TEST(PageRankTest, SymmetricStarConcentratesRankAtHub) {
  std::vector<Edge> star;
  for (std::uint32_t i = 1; i <= 20; ++i) star.push_back({0, i});
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(star, 4);
  PageRankOptions options;
  options.iterations = 30;
  const auto result = page_rank(eng, ds, options);
  const double hub = result.ranks.at(0);
  for (std::uint32_t i = 1; i <= 20; ++i) {
    EXPECT_GT(hub, 5.0 * result.ranks.at(i));
  }
}

TEST(PageRankTest, RegularGraphIsUniform) {
  // A cycle: every vertex has degree 2, so ranks are uniform.
  std::vector<Edge> cycle;
  const std::uint32_t n = 16;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = (i + 1) % n;
    cycle.push_back({std::min(i, j), std::max(i, j)});
  }
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(cycle, 4);
  PageRankOptions options;
  options.iterations = 25;
  const auto result = page_rank(eng, ds, options);
  for (const auto& [v, r] : result.ranks) {
    EXPECT_NEAR(r, 1.0 / n, 1e-6) << "vertex " << v;
  }
}

TEST(PageRankTest, DroppingDegradesAccuracyGradually) {
  workload::GraphParams params;
  params.scale = 10;
  params.edges = 16384;
  params.seed = 9;
  const auto edges = workload::generate_rmat_graph(params);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(edges, 32);
  PageRankOptions exact_opts;
  exact_opts.iterations = 8;
  const auto exact = page_rank(eng, ds, exact_opts);

  double prev_error = -1.0;
  // Note: theta below 1/partitions drops nothing (ceil granularity).
  for (double theta : {0.05, 0.1, 0.2}) {
    PageRankOptions opts = exact_opts;
    opts.stage_drop_ratio = theta;
    const auto approx = page_rank(eng, ds, opts);
    const double err = rank_error_percent(exact.ranks, approx.ranks);
    EXPECT_GT(err, 0.0) << "theta=" << theta;
    EXPECT_LT(err, 100.0) << "theta=" << theta;
    EXPECT_GT(err, prev_error - 5.0);  // roughly increasing
    EXPECT_LT(approx.tasks_run, approx.tasks_total);
    prev_error = err;
  }
}

TEST(RankErrorTest, KnownValues) {
  RankVector ref{{1, 0.5}, {2, 0.5}};
  EXPECT_DOUBLE_EQ(rank_error_percent(ref, ref), 0.0);
  RankVector est{{1, 0.4}, {2, 0.6}};
  EXPECT_NEAR(rank_error_percent(ref, est), 20.0, 1e-9);
  RankVector missing{{1, 0.5}};
  EXPECT_NEAR(rank_error_percent(ref, missing), 50.0, 1e-9);
  RankVector extra{{1, 0.5}, {2, 0.5}, {3, 0.1}};
  EXPECT_NEAR(rank_error_percent(ref, extra), 10.0, 1e-9);
}

TEST(PageRankTest, Validation) {
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(std::vector<Edge>{{0, 1}}, 1);
  PageRankOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(page_rank(eng, ds, bad), dias::precondition_error);
  bad = {};
  bad.damping = 1.5;
  EXPECT_THROW(page_rank(eng, ds, bad), dias::precondition_error);
  EXPECT_THROW(rank_error_percent({}, {}), dias::precondition_error);
}

}  // namespace
}  // namespace dias::analytics
