// Fault-tolerant execution: injection determinism, retry, speculation,
// approximation-aware degradation, and the engine-level reproducibility
// guarantees they must preserve.
#include "engine/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analytics/triangle_count.hpp"
#include "analytics/word_count.hpp"
#include "common/error.hpp"
#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"
#include "workload/text_corpus.hpp"

namespace dias::engine {
namespace {

Engine::Options eng_opts(double drop = 0.0, std::uint64_t seed = 42) {
  Engine::Options o;
  o.workers = 4;
  o.seed = seed;
  o.drop_ratio = drop;
  return o;
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// Log equality modulo wall-clock fields.
void expect_same_log(const std::vector<StageInfo>& a, const std::vector<StageInfo>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("stage " + a[i].name);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].total_partitions, b[i].total_partitions);
    EXPECT_EQ(a[i].executed_partitions, b[i].executed_partitions);
    EXPECT_EQ(a[i].executed_partition_ids, b[i].executed_partition_ids);
    EXPECT_EQ(a[i].failed_partition_ids, b[i].failed_partition_ids);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_EQ(a[i].retries, b[i].retries);
    EXPECT_DOUBLE_EQ(a[i].applied_drop_ratio, b[i].applied_drop_ratio);
    EXPECT_DOUBLE_EQ(a[i].effective_drop_ratio, b[i].effective_drop_ratio);
  }
}

// --- FaultInjector ---------------------------------------------------------

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  EXPECT_FALSE(inj.should_fail(0, 0, 1));
  EXPECT_DOUBLE_EQ(inj.straggler_delay_ms(0, 0), 0.0);
}

TEST(FaultInjectorTest, DeterministicPureFunctionOfCoordinates) {
  FaultConfig cfg;
  cfg.fail_prob = 0.5;
  cfg.straggler_prob = 0.3;
  cfg.straggler_delay_ms = 10.0;
  cfg.seed = 99;
  const FaultInjector a(cfg);
  const FaultInjector b(cfg);
  for (std::uint64_t stage = 0; stage < 4; ++stage) {
    for (std::size_t part = 0; part < 50; ++part) {
      EXPECT_EQ(a.straggler_delay_ms(stage, part), b.straggler_delay_ms(stage, part));
      for (int attempt = 1; attempt <= 3; ++attempt) {
        EXPECT_EQ(a.should_fail(stage, part, attempt), b.should_fail(stage, part, attempt));
      }
    }
  }
}

TEST(FaultInjectorTest, ExtremeProbabilities) {
  FaultConfig always;
  always.fail_prob = 1.0;
  const FaultInjector inj_always(always);
  FaultConfig never;
  never.fail_prob = 0.0;
  const FaultInjector inj_never(never);
  for (std::size_t p = 0; p < 100; ++p) {
    EXPECT_TRUE(inj_always.should_fail(0, p, 1));
    EXPECT_FALSE(inj_never.should_fail(0, p, 1));
  }
}

TEST(FaultInjectorTest, EmpiricalRatesMatchConfig) {
  FaultConfig cfg;
  cfg.fail_prob = 0.2;
  cfg.straggler_prob = 0.4;
  cfg.straggler_delay_ms = 5.0;
  cfg.seed = 3;
  const FaultInjector inj(cfg);
  int failures = 0, stragglers = 0;
  const int n = 20000;
  for (int p = 0; p < n; ++p) {
    failures += inj.should_fail(1, static_cast<std::size_t>(p), 1) ? 1 : 0;
    stragglers += inj.straggler_delay_ms(1, static_cast<std::size_t>(p)) > 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(stragglers) / n, 0.4, 0.02);
}

TEST(FaultInjectorTest, AttemptsRerollIndependently) {
  FaultConfig cfg;
  cfg.fail_prob = 0.5;
  cfg.seed = 11;
  const FaultInjector inj(cfg);
  // Some partition must fail on attempt 1 and pass on attempt 2.
  bool saw_recovery = false;
  for (std::size_t p = 0; p < 200 && !saw_recovery; ++p) {
    saw_recovery = inj.should_fail(0, p, 1) && !inj.should_fail(0, p, 2);
  }
  EXPECT_TRUE(saw_recovery);
}

TEST(FaultInjectorTest, ValidatesConfig) {
  FaultConfig bad;
  bad.fail_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad}, dias::precondition_error);
  bad.fail_prob = 0.5;
  bad.straggler_prob = -0.1;
  EXPECT_THROW(FaultInjector{bad}, dias::precondition_error);
  bad.straggler_prob = 0.1;
  bad.straggler_delay_ms = -1.0;
  EXPECT_THROW(FaultInjector{bad}, dias::precondition_error);
}

TEST(FaultOptionsTest, ActiveDetection) {
  FaultToleranceOptions ft;
  EXPECT_FALSE(ft.active());
  ft.max_attempts = 3;
  EXPECT_TRUE(ft.active());
  ft.max_attempts = 1;
  ft.speculation = true;
  EXPECT_TRUE(ft.active());
  ft.speculation = false;
  ft.injection.fail_prob = 0.1;
  EXPECT_TRUE(ft.active());
}

TEST(FaultOptionsTest, StallWatchdogActivatesFaultPath) {
  FaultToleranceOptions ft;
  ft.stall_watchdog = true;
  EXPECT_TRUE(ft.active());
}

// --- retry backoff curves (ISSUE 10 satellite a) ---------------------------

TEST(BackoffTest, LinearPolicyIsExactPR1Curve) {
  FaultToleranceOptions ft;
  ft.backoff = BackoffPolicy::kLinear;
  ft.retry_backoff_ms = 7.0;
  ft.retry_backoff_cap_ms = 10.0;  // the legacy curve ignores the cap
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_DOUBLE_EQ(backoff_delay_ms(ft, 3, 5, attempt), 7.0 * attempt);
  }
}

TEST(BackoffTest, DecorrelatedJitterDeterministicCappedAndDesynchronized) {
  FaultToleranceOptions ft;
  ft.backoff = BackoffPolicy::kDecorrelatedJitter;
  ft.retry_backoff_ms = 10.0;
  ft.retry_backoff_cap_ms = 80.0;
  ft.injection.seed = 42;

  // Deterministic: the whole curve is a pure function of the coordinates.
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double d = backoff_delay_ms(ft, 1, 2, attempt);
    EXPECT_DOUBLE_EQ(d, backoff_delay_ms(ft, 1, 2, attempt));
    EXPECT_GE(d, 10.0);  // never below base
    EXPECT_LE(d, 80.0);  // never above cap
  }
  EXPECT_DOUBLE_EQ(backoff_delay_ms(ft, 1, 2, 1), 10.0);  // first retry = base

  // Desynchronized: distinct tasks draw distinct delays at the same
  // attempt, so a retry storm never stampedes one instant.
  std::set<double> delays;
  for (std::size_t part = 0; part < 16; ++part) {
    delays.insert(backoff_delay_ms(ft, 1, part, 4));
  }
  EXPECT_GT(delays.size(), 8u);

  // A different seed reshuffles the jitter.
  FaultToleranceOptions other = ft;
  other.injection.seed = 43;
  bool any_difference = false;
  for (int attempt = 2; attempt <= 8; ++attempt) {
    any_difference = any_difference || backoff_delay_ms(other, 1, 2, attempt) !=
                                           backoff_delay_ms(ft, 1, 2, attempt);
  }
  EXPECT_TRUE(any_difference);
}

TEST(BackoffTest, ZeroBaseMeansNoDelayUnderEitherPolicy) {
  FaultToleranceOptions ft;
  ft.retry_backoff_ms = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay_ms(ft, 0, 0, 3), 0.0);
  ft.backoff = BackoffPolicy::kLinear;
  EXPECT_DOUBLE_EQ(backoff_delay_ms(ft, 0, 0, 3), 0.0);
  ft.retry_backoff_ms = 5.0;
  EXPECT_DOUBLE_EQ(backoff_delay_ms(ft, 0, 0, 0), 0.0);  // no attempt yet
}

// --- stall watchdog --------------------------------------------------------

TEST(FaultStallWatchdogTest, StalledTaskIsSpeculatedBeforeQuantile) {
  // Every primary straggles for far longer than the stall threshold;
  // quantile speculation is OFF, so only the watchdog can launch copies.
  // Speculative copies skip the injected delay, win exactly once per
  // partition, and the stage's content stays exact.
  Engine::Options o = eng_opts();
  o.workers = 4;
  o.fault.injection.straggler_prob = 1.0;
  o.fault.injection.straggler_delay_ms = 400.0;
  o.fault.speculation = false;
  o.fault.stall_watchdog = true;
  o.fault.stall_threshold_ms = 25.0;
  o.fault.stall_p95_multiplier = 0.0;  // absolute floor only: no registry attached
  Engine eng(o);

  constexpr std::size_t kTasks = 3;
  const auto ds = eng.parallelize(iota_vec(30), kTasks);
  std::array<std::atomic<int>, kTasks> executions{};
  eng.clear_stage_log();
  StageOptions so;
  so.name = "watchdog";
  const auto out = eng.map_partitions_indexed(
      ds,
      [&](std::size_t p, const std::vector<int>& part) {
        executions[p].fetch_add(1);
        return part;
      },
      so);
  EXPECT_EQ(out.total_size(), 30u);

  const StageInfo& info = eng.stage_log().back();
  EXPECT_EQ(info.executed_partitions, kTasks);
  EXPECT_GE(info.speculative_launched, 1u);
  EXPECT_GE(info.speculative_wins, 1u);
  for (const auto& count : executions) EXPECT_EQ(count.load(), 1);
}

TEST(FaultOptionsTest, EngineValidatesPolicy) {
  Engine::Options o = eng_opts();
  o.fault.max_attempts = 0;
  EXPECT_THROW(Engine{o}, dias::precondition_error);
  Engine eng(eng_opts());
  FaultToleranceOptions ft;
  ft.speculation_quantile = 0.0;
  EXPECT_THROW(eng.set_fault_options(ft), dias::precondition_error);
  ft.speculation_quantile = 0.75;
  ft.retry_backoff_ms = -1.0;
  EXPECT_THROW(eng.set_fault_options(ft), dias::precondition_error);
}

// --- retry -----------------------------------------------------------------

TEST(FaultRetryTest, RetriesUntilSuccessAndLogsAttempts) {
  Engine::Options o = eng_opts();
  o.fault.injection.fail_prob = 0.3;
  o.fault.injection.seed = 5;
  o.fault.max_attempts = 25;  // deep enough that every task recovers
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(300), 30);
  eng.clear_stage_log();
  StageOptions so;
  so.name = "retry-map";
  const auto out = eng.map(ds, [](const int& x) { return x + 1; }, so);
  EXPECT_EQ(out.total_size(), 300u);

  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.executed_partitions, 30u);
  EXPECT_TRUE(info.failed_partition_ids.empty());
  EXPECT_DOUBLE_EQ(info.effective_drop_ratio, 0.0);
  EXPECT_GT(info.retries, 0u);
  EXPECT_EQ(info.attempts, 30u + info.retries);

  // Cross-check the retry count against the injector's deterministic plan:
  // task p needs as many attempts as leading should_fail() answers + 1.
  std::size_t expected_retries = 0;
  for (std::size_t p = 0; p < 30; ++p) {
    int attempt = 1;
    while (eng.fault_injector().should_fail(0, p, attempt)) ++attempt;
    expected_retries += static_cast<std::size_t>(attempt - 1);
  }
  EXPECT_EQ(info.retries, expected_retries);
}

TEST(FaultRetryTest, UserCodeExceptionsAreRetried) {
  Engine::Options o = eng_opts();
  o.fault.max_attempts = 3;  // no injection; retries driven by the body itself
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(80), 8);
  std::array<std::atomic<int>, 8> calls{};
  eng.clear_stage_log();
  const auto out = eng.map_partitions_indexed(
      ds,
      [&](std::size_t p, const std::vector<int>& part) {
        // Every partition's first attempt dies; the retry succeeds.
        if (calls[p].fetch_add(1) == 0) throw std::runtime_error("flaky");
        return part;
      },
      StageOptions{});
  EXPECT_EQ(out.total_size(), 80u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.executed_partitions, 8u);
  EXPECT_EQ(info.retries, 8u);
  for (const auto& c : calls) EXPECT_EQ(c.load(), 2);
}

TEST(FaultRetryTest, ZeroFaultRateMatchesLegacyPathExactly) {
  // The retry machinery at failure probability 0 must not change which
  // partitions run or what the job computes.
  Engine::Options plain = eng_opts(0.3, 7);
  Engine::Options ft = plain;
  ft.fault.max_attempts = 3;
  ft.fault.retry_backoff_ms = 1.0;
  Engine a(plain), b(ft);
  const auto da = a.parallelize(iota_vec(500), 40);
  const auto db = b.parallelize(iota_vec(500), 40);
  StageOptions so;
  so.name = "zero-fault";
  const auto ra = a.map(da, [](const int& x) { return 3 * x; }, so);
  const auto rb = b.map(db, [](const int& x) { return 3 * x; }, so);
  EXPECT_EQ(ra.collect(), rb.collect());
  expect_same_log(a.stage_log(), b.stage_log());
}

// --- approximation-aware degradation ---------------------------------------

TEST(FaultDegradationTest, FailedTasksBecomeDropsOnDroppableStage) {
  Engine::Options o = eng_opts(0.2);
  o.fault.injection.fail_prob = 0.5;
  o.fault.injection.seed = 17;
  o.fault.max_attempts = 2;
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(400), 40);
  eng.clear_stage_log();
  StageOptions so;
  so.name = "degrade-map";
  so.droppable = true;
  const auto out = eng.map(ds, [](const int& x) { return x; }, so);

  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.total_partitions, 40u);
  // theta = 0.2 drops 8 up front; injected deaths must then degrade more.
  const std::size_t selected = 32;
  EXPECT_EQ(info.executed_partitions + info.failed_partition_ids.size(), selected);
  EXPECT_FALSE(info.failed_partition_ids.empty());
  EXPECT_DOUBLE_EQ(info.applied_drop_ratio, 0.2);
  EXPECT_DOUBLE_EQ(info.effective_drop_ratio,
                   1.0 - static_cast<double>(info.executed_partitions) / 40.0);
  EXPECT_GT(info.effective_drop_ratio, 0.2);

  // A degraded task contributes no data, exactly like a dropped one.
  std::set<std::size_t> executed(info.executed_partition_ids.begin(),
                                 info.executed_partition_ids.end());
  for (std::size_t p = 0; p < out.partitions(); ++p) {
    EXPECT_EQ(out.partition(p).empty(), executed.count(p) == 0) << "partition " << p;
  }

  // The dead set is exactly the injector's plan: both attempts fail.
  for (std::size_t p : info.failed_partition_ids) {
    EXPECT_TRUE(eng.fault_injector().should_fail(0, p, 1));
    EXPECT_TRUE(eng.fault_injector().should_fail(0, p, 2));
  }
}

TEST(FaultDegradationTest, NonDroppableStageRaisesTypedError) {
  Engine::Options o = eng_opts();
  o.fault.injection.fail_prob = 1.0;  // every attempt dies
  o.fault.max_attempts = 3;
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(50), 5);
  eng.clear_stage_log();
  StageOptions so;
  so.name = "critical-map";
  so.droppable = false;
  try {
    eng.map(ds, [](const int& x) { return x; }, so);
    FAIL() << "expected TaskFailedError";
  } catch (const TaskFailedError& e) {
    EXPECT_EQ(e.stage(), "critical-map");
    EXPECT_EQ(e.partition(), 0u);  // first failed partition
    EXPECT_EQ(e.attempts(), 3);
    EXPECT_NE(std::string(e.what()).find("critical-map"), std::string::npos);
  }
  // The stage was still logged for post-mortem before the throw.
  ASSERT_EQ(eng.stage_log().size(), 1u);
  EXPECT_EQ(eng.stage_log().front().failed_partition_ids.size(), 5u);
  EXPECT_EQ(eng.stage_log().front().executed_partitions, 0u);
}

TEST(FaultDegradationTest, TaskFailedErrorIsADiasError) {
  const TaskFailedError e("s", 3, 2);
  const dias::error& base = e;
  EXPECT_NE(std::string(base.what()).find("partition 3"), std::string::npos);
}

// --- speculation ------------------------------------------------------------

TEST(FaultSpeculationTest, SpeculativeCopyBeatsStragglerExactlyOnce) {
  Engine::Options o = eng_opts();
  o.fault.injection.straggler_prob = 0.25;
  o.fault.injection.straggler_delay_ms = 400.0;
  o.fault.injection.seed = 23;
  o.fault.speculation = true;
  o.fault.speculation_quantile = 0.5;
  Engine eng(o);

  // The injector plan is deterministic: require a non-trivial straggler
  // set so speculation actually has work (seed chosen accordingly).
  std::size_t planned_stragglers = 0;
  for (std::size_t p = 0; p < 12; ++p) {
    if (eng.fault_injector().straggler_delay_ms(0, p) > 0.0) ++planned_stragglers;
  }
  ASSERT_GE(planned_stragglers, 1u);
  ASSERT_LE(planned_stragglers, 5u);  // quantile of fast tasks is reachable

  const auto ds = eng.parallelize(iota_vec(120), 12);
  std::array<std::atomic<int>, 12> completions{};
  eng.clear_stage_log();
  const auto out = eng.map_partitions_indexed(
      ds,
      [&](std::size_t p, const std::vector<int>& part) {
        ++completions[p];
        return part;
      },
      StageOptions{});
  EXPECT_EQ(out.total_size(), 120u);

  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.executed_partitions, 12u);
  EXPECT_TRUE(info.failed_partition_ids.empty());
  EXPECT_GE(info.speculative_launched, 1u);
  EXPECT_GE(info.speculative_wins, 1u);
  EXPECT_LE(info.speculative_wins, info.speculative_launched);
  // Exactly one copy completed each partition: the loser was discarded
  // before running the body, not after.
  for (const auto& c : completions) EXPECT_EQ(c.load(), 1);
  // The stage should not have waited out the full straggler delay.
  EXPECT_LT(info.duration_s, 0.400);
}

TEST(FaultSpeculationTest, NoSpeculationWithoutStragglers) {
  Engine::Options o = eng_opts();
  o.fault.speculation = true;
  o.fault.speculation_quantile = 0.75;
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(100), 10);
  eng.clear_stage_log();
  eng.map(ds, [](const int& x) { return x; }, StageOptions{});
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.executed_partitions, 10u);
  EXPECT_EQ(info.speculative_wins, 0u);
}

// --- determinism regressions ------------------------------------------------

TEST(FaultDeterminismTest, WordCountIdenticalAcrossEngineInstances) {
  workload::TextCorpusParams params;
  params.posts = 500;
  params.vocabulary = 300;
  params.seed = 19;
  const auto corpus = workload::generate_text_corpus("determinism", params);

  auto run = [&](Engine& eng) {
    const auto ds = eng.parallelize(corpus.rows, 20);
    return analytics::word_count(eng, ds, 8, 0.3);
  };
  Engine a(eng_opts(0.0, 77)), b(eng_opts(0.0, 77));
  const auto ra = run(a);
  const auto rb = run(b);
  EXPECT_EQ(ra.counts, rb.counts);
  EXPECT_EQ(ra.map_tasks_run, rb.map_tasks_run);
  expect_same_log(a.stage_log(), b.stage_log());
}

TEST(FaultDeterminismTest, TriangleCountIdenticalAcrossEngineInstances) {
  workload::GraphParams gparams;
  gparams.scale = 10;
  gparams.edges = 1u << 13;
  gparams.seed = 29;
  const auto edges = workload::generate_rmat_graph(gparams);

  auto run = [&](Engine& eng) {
    const auto ds = eng.parallelize(edges, 16);
    return analytics::triangle_count(eng, ds, 0.25);
  };
  Engine a(eng_opts(0.0, 31)), b(eng_opts(0.0, 31));
  const auto ra = run(a);
  const auto rb = run(b);
  EXPECT_EQ(ra.triangles, rb.triangles);
  EXPECT_EQ(ra.tasks_run, rb.tasks_run);
  expect_same_log(a.stage_log(), b.stage_log());
}

TEST(FaultDeterminismTest, SeededFaultyWordCountReproducesIdenticalLog) {
  // The paper-level acceptance scenario: a droppable word-count map with
  // theta = 0.2 and injected failure probability 0.2 completes, reports an
  // effective drop ratio >= theta, and is bit-reproducible from the seed.
  workload::TextCorpusParams params;
  params.posts = 600;
  params.vocabulary = 400;
  params.seed = 37;
  const auto corpus = workload::generate_text_corpus("faulty", params);

  Engine::Options o = eng_opts(0.0, 123);
  o.fault.injection.fail_prob = 0.2;
  o.fault.injection.seed = 41;
  o.fault.injection.droppable_only = true;  // shuffle/reduce stay healthy
  o.fault.max_attempts = 1;  // every injected failure degrades to a drop
  auto run = [&](Engine& eng) {
    const auto ds = eng.parallelize(corpus.rows, 30);
    return analytics::word_count(eng, ds, 8, 0.2);
  };

  Engine a(o), b(o);
  const auto ra = run(a);
  const auto rb = run(b);

  const auto& map_stage = a.stage_log().front();
  ASSERT_EQ(map_stage.kind, EngineStageKind::kMap);
  EXPECT_FALSE(map_stage.failed_partition_ids.empty());
  EXPECT_GE(map_stage.effective_drop_ratio, 0.2);
  EXPECT_DOUBLE_EQ(map_stage.applied_drop_ratio, 0.2);
  // word_count's executed-fraction accounting must see the degraded tasks,
  // so the rescaled estimator stays unbiased under failures.
  EXPECT_EQ(ra.map_tasks_run, map_stage.executed_partitions);
  EXPECT_LT(ra.map_tasks_run, 24u);  // 30 * (1 - 0.2) minus the degraded ones

  EXPECT_EQ(ra.counts, rb.counts);
  expect_same_log(a.stage_log(), b.stage_log());
}

}  // namespace
}  // namespace dias::engine
