#include "analytics/word_count.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/text_corpus.hpp"

namespace dias::analytics {
namespace {

engine::Engine::Options eng_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 3;
  return o;
}

TEST(WordCountTest, ExactCountOnHandwrittenRows) {
  const std::vector<std::string> rows{
      "<row Id=\"1\" Body=\"hello world hello\"/>",
      "<row Id=\"2\" Body=\"world again\"/>",
  };
  const auto counts = exact_word_count(rows);
  EXPECT_EQ(counts.at("hello"), 2u);
  EXPECT_EQ(counts.at("world"), 2u);
  EXPECT_EQ(counts.at("again"), 1u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(WordCountTest, EngineMatchesExactAtZeroDrop) {
  workload::TextCorpusParams params;
  params.posts = 400;
  params.vocabulary = 200;
  params.seed = 11;
  const auto corpus = workload::generate_text_corpus("unit", params);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(corpus.rows, 10);
  const auto result = word_count(eng, ds, 8, 0.0);
  const auto exact = exact_word_count(corpus.rows);
  ASSERT_EQ(result.counts.size(), exact.size());
  for (const auto& [word, count] : exact) {
    EXPECT_EQ(result.counts.at(word), count) << word;
  }
  EXPECT_EQ(result.map_tasks_total, 10u);
  EXPECT_EQ(result.map_tasks_run, 10u);
  EXPECT_NEAR(word_count_error(exact, result.counts), 0.0, 1e-12);
}

TEST(WordCountTest, DropReducesExecutedTasks) {
  workload::TextCorpusParams params;
  params.posts = 500;
  params.seed = 13;
  const auto corpus = workload::generate_text_corpus("unit", params);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(corpus.rows, 20);
  const auto result = word_count(eng, ds, 8, 0.25);
  EXPECT_EQ(result.map_tasks_total, 20u);
  EXPECT_EQ(result.map_tasks_run, 15u);
}

TEST(WordCountTest, ErrorGrowsWithDropRatio) {
  workload::TextCorpusParams params;
  params.posts = 3000;
  params.vocabulary = 1000;
  params.seed = 17;
  const auto corpus = workload::generate_text_corpus("unit", params);
  const auto exact = exact_word_count(corpus.rows);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(corpus.rows, 50);
  double prev_error = -1.0;
  for (double theta : {0.0, 0.2, 0.5, 0.8}) {
    const auto result = word_count(eng, ds, 8, theta);
    const double err = word_count_error(exact, result.counts);
    EXPECT_GT(err, prev_error - 2.0) << "theta=" << theta;  // rough monotone
    if (theta > 0.0) {
      // Dropping theta of uniformly-sized partitions loses roughly theta of
      // each word's count.
      EXPECT_NEAR(err, 100.0 * theta, 20.0) << "theta=" << theta;
    }
    prev_error = err;
  }
}

TEST(WordCountErrorTest, MissingWordsCountAsZero) {
  WordCounts ref{{"a", 100}, {"b", 50}};
  WordCounts est{{"a", 100}};
  // b missing -> 100% error on b, 0% on a -> 50% MAPE.
  EXPECT_NEAR(word_count_error(ref, est, 10), 50.0, 1e-9);
}

TEST(WordCountErrorTest, TopKRestriction) {
  WordCounts ref{{"big", 1000}, {"small", 1}};
  WordCounts est{{"big", 900}, {"small", 100}};
  // top_k = 1 only looks at "big": 10% error.
  EXPECT_NEAR(word_count_error(ref, est, 1), 10.0, 1e-9);
}

TEST(WordCountTest, DurationRecorded) {
  workload::TextCorpusParams params;
  params.posts = 100;
  const auto corpus = workload::generate_text_corpus("unit", params);
  engine::Engine eng(eng_opts());
  const auto ds = eng.parallelize(corpus.rows, 4);
  const auto result = word_count(eng, ds);
  EXPECT_GT(result.duration_s, 0.0);
}

}  // namespace
}  // namespace dias::analytics
