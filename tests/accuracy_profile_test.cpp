#include "core/accuracy_profile.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dias::core {
namespace {

TEST(AccuracyProfileTest, InterpolatesLinearly) {
  const AccuracyProfile profile({{0.0, 0.0}, {0.2, 10.0}, {0.4, 30.0}});
  EXPECT_DOUBLE_EQ(profile.error_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(profile.error_at(0.1), 5.0);
  EXPECT_DOUBLE_EQ(profile.error_at(0.2), 10.0);
  EXPECT_DOUBLE_EQ(profile.error_at(0.3), 20.0);
  EXPECT_DOUBLE_EQ(profile.error_at(0.4), 30.0);
}

TEST(AccuracyProfileTest, ClampsOutsideRange) {
  const AccuracyProfile profile({{0.1, 5.0}, {0.5, 25.0}});
  EXPECT_DOUBLE_EQ(profile.error_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(profile.error_at(1.0), 25.0);
}

TEST(AccuracyProfileTest, MaxThetaForError) {
  const AccuracyProfile profile({{0.0, 0.0}, {0.2, 10.0}, {0.4, 30.0}});
  EXPECT_NEAR(profile.max_theta_for_error(10.0), 0.2, 0.005);
  EXPECT_NEAR(profile.max_theta_for_error(20.0), 0.3, 0.005);
  EXPECT_NEAR(profile.max_theta_for_error(0.0), 0.0, 0.005);
  EXPECT_NEAR(profile.max_theta_for_error(100.0), 0.4, 1e-9);
}

TEST(AccuracyProfileTest, PaperWordCountCurve) {
  const auto profile = AccuracyProfile::paper_word_count();
  // The paper's anchor points (Section 5.1): 8.5% @ 0.1, 15% @ 0.2, 32% @ 0.4.
  EXPECT_NEAR(profile.error_at(0.1), 8.5, 1e-9);
  EXPECT_NEAR(profile.error_at(0.2), 15.0, 1e-9);
  EXPECT_NEAR(profile.error_at(0.4), 32.0, 1e-9);
  // Tolerances used in the evaluation map back to the drop ratios it uses.
  EXPECT_NEAR(profile.max_theta_for_error(8.5), 0.1, 0.01);
  EXPECT_NEAR(profile.max_theta_for_error(15.0), 0.2, 0.01);
  EXPECT_NEAR(profile.max_theta_for_error(32.0), 0.4, 0.01);
  // Sub-linear: error grows slower than 100% * theta.
  EXPECT_LT(profile.error_at(0.4), 40.0);
  EXPECT_LT(profile.error_at(0.8), 80.0);
}

TEST(AccuracyProfileTest, MeasureBuildsFromCallback) {
  // "Profiling runs": error grows as 50 * theta.
  const std::vector<double> grid{0.1, 0.2, 0.4};
  int calls = 0;
  const auto profile = AccuracyProfile::measure(
      [&calls](double theta) {
        ++calls;
        return 50.0 * theta;
      },
      grid);
  EXPECT_EQ(calls, 3);
  // theta = 0 anchor prepended automatically.
  EXPECT_DOUBLE_EQ(profile.error_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(profile.error_at(0.2), 10.0);
  EXPECT_NEAR(profile.max_theta_for_error(10.0), 0.2, 0.005);
}

TEST(AccuracyProfileTest, MeasureClampsNegativeErrors) {
  const std::vector<double> grid{0.1, 0.2};
  const auto profile =
      AccuracyProfile::measure([](double) { return -3.0; }, grid);
  EXPECT_DOUBLE_EQ(profile.error_at(0.15), 0.0);
}

TEST(AccuracyProfileTest, Validation) {
  EXPECT_THROW(AccuracyProfile({{0.0, 0.0}}), dias::precondition_error);
  EXPECT_THROW(AccuracyProfile({{0.2, 0.0}, {0.1, 5.0}}), dias::precondition_error);
  EXPECT_THROW(AccuracyProfile({{0.0, -1.0}, {0.1, 5.0}}), dias::precondition_error);
  EXPECT_THROW(AccuracyProfile({{0.0, 0.0}, {1.5, 5.0}}), dias::precondition_error);
  const AccuracyProfile p({{0.0, 0.0}, {0.5, 10.0}});
  EXPECT_THROW(p.error_at(-0.1), dias::precondition_error);
  EXPECT_THROW(p.max_theta_for_error(-1.0), dias::precondition_error);
}

}  // namespace
}  // namespace dias::core
