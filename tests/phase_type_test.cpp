#include "model/phase_type.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace dias::model {
namespace {

TEST(PhaseTypeTest, ExponentialMoments) {
  const auto ph = PhaseType::exponential(2.0);
  EXPECT_EQ(ph.phases(), 1u);
  EXPECT_NEAR(ph.mean(), 0.5, 1e-12);
  EXPECT_NEAR(ph.moment(2), 2.0 * 0.25, 1e-12);  // E[X^2] = 2/rate^2
  EXPECT_NEAR(ph.variance(), 0.25, 1e-12);
  EXPECT_NEAR(ph.scv(), 1.0, 1e-12);
}

TEST(PhaseTypeTest, ErlangMoments) {
  const int k = 5;
  const double rate = 2.0;
  const auto ph = PhaseType::erlang(k, rate);
  EXPECT_EQ(ph.phases(), 5u);
  EXPECT_NEAR(ph.mean(), k / rate, 1e-12);
  EXPECT_NEAR(ph.variance(), k / (rate * rate), 1e-10);
  EXPECT_NEAR(ph.scv(), 1.0 / k, 1e-12);
}

TEST(PhaseTypeTest, HyperExponentialMoments) {
  const auto ph = PhaseType::hyper_exponential({0.4, 0.6}, {1.0, 3.0});
  const double mean = 0.4 / 1.0 + 0.6 / 3.0;
  const double m2 = 0.4 * 2.0 / 1.0 + 0.6 * 2.0 / 9.0;
  EXPECT_NEAR(ph.mean(), mean, 1e-12);
  EXPECT_NEAR(ph.moment(2), m2, 1e-12);
  EXPECT_GT(ph.scv(), 1.0);
}

TEST(PhaseTypeTest, CdfMatchesExponential) {
  const auto ph = PhaseType::exponential(1.5);
  for (double t : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(ph.cdf(t), 1.0 - std::exp(-1.5 * t), 1e-9) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(ph.cdf(-1.0), 0.0);
}

TEST(PhaseTypeTest, CdfMatchesErlang2) {
  const double r = 2.0;
  const auto ph = PhaseType::erlang(2, r);
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    const double expected = 1.0 - std::exp(-r * t) * (1.0 + r * t);
    EXPECT_NEAR(ph.cdf(t), expected, 1e-9) << "t=" << t;
  }
}

TEST(PhaseTypeTest, PdfMatchesExponential) {
  const auto ph = PhaseType::exponential(0.7);
  for (double t : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(ph.pdf(t), 0.7 * std::exp(-0.7 * t), 1e-9);
  }
}

TEST(PhaseTypeTest, LstMatchesExponential) {
  const double rate = 2.0;
  const auto ph = PhaseType::exponential(rate);
  for (double s : {0.0, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(ph.lst(s), rate / (rate + s), 1e-12);
  }
}

TEST(PhaseTypeTest, MgfMatchesExponentialAndDiverges) {
  const double rate = 2.0;
  const auto ph = PhaseType::exponential(rate);
  EXPECT_NEAR(ph.mgf(1.0), rate / (rate - 1.0), 1e-12);
  EXPECT_THROW(ph.mgf(2.5), numeric_error);
}

TEST(PhaseTypeTest, ConvolutionAddsMoments) {
  const auto a = PhaseType::erlang(2, 3.0);
  const auto b = PhaseType::exponential(1.0);
  const auto c = PhaseType::convolve(a, b);
  EXPECT_EQ(c.phases(), 3u);
  EXPECT_NEAR(c.mean(), a.mean() + b.mean(), 1e-12);
  EXPECT_NEAR(c.variance(), a.variance() + b.variance(), 1e-10);
}

TEST(PhaseTypeTest, ConvolveNEqualsErlang) {
  const auto x = PhaseType::exponential(2.0);
  const auto sum = PhaseType::convolve_n(x, 4);
  const auto erl = PhaseType::erlang(4, 2.0);
  EXPECT_NEAR(sum.mean(), erl.mean(), 1e-12);
  EXPECT_NEAR(sum.variance(), erl.variance(), 1e-10);
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(sum.cdf(t), erl.cdf(t), 1e-8);
  }
}

TEST(PhaseTypeTest, MixtureMeansCombine) {
  const auto a = PhaseType::exponential(1.0);
  const auto b = PhaseType::exponential(4.0);
  const auto mix = PhaseType::mixture(0.25, a, b);
  EXPECT_NEAR(mix.mean(), 0.25 * 1.0 + 0.75 * 0.25, 1e-12);
  EXPECT_NEAR(mix.cdf(1.0), 0.25 * a.cdf(1.0) + 0.75 * b.cdf(1.0), 1e-9);
}

TEST(PhaseTypeTest, MixtureManyWithZeroMass) {
  const std::vector<std::pair<double, PhaseType>> branches{
      {0.3, PhaseType::exponential(1.0)}, {0.5, PhaseType::erlang(2, 2.0)}};
  const auto mix = PhaseType::mixture_many(branches, 0.2);
  EXPECT_NEAR(mix.point_mass_at_zero(), 0.2, 1e-9);
  EXPECT_NEAR(mix.mean(), 0.3 * 1.0 + 0.5 * 1.0, 1e-12);
  EXPECT_NEAR(mix.cdf(0.0), 0.2, 1e-9);
}

TEST(PhaseTypeTest, ConvolutionWithPointMassAtZero) {
  // X = 0 w.p. 0.5, else Exp(1); Y = Exp(2).
  const std::vector<std::pair<double, PhaseType>> branches{{0.5, PhaseType::exponential(1.0)}};
  const auto x = PhaseType::mixture_many(branches, 0.5);
  const auto y = PhaseType::exponential(2.0);
  const auto sum = PhaseType::convolve(x, y);
  EXPECT_NEAR(sum.mean(), 0.5 * 1.0 + 0.5, 1e-12);
  EXPECT_NEAR(sum.point_mass_at_zero(), 0.0, 1e-9);
}

TEST(PhaseTypeTest, ScaledDistribution) {
  const auto x = PhaseType::erlang(3, 2.0);
  const auto y = x.scaled(2.0);  // 2X
  EXPECT_NEAR(y.mean(), 2.0 * x.mean(), 1e-12);
  EXPECT_NEAR(y.variance(), 4.0 * x.variance(), 1e-10);
  EXPECT_NEAR(y.cdf(3.0), x.cdf(1.5), 1e-9);
}

TEST(PhaseTypeTest, SampleMatchesMean) {
  Rng rng(123);
  const auto ph = PhaseType::erlang(3, 1.5);
  Welford acc;
  for (int i = 0; i < 50000; ++i) acc.add(ph.sample(rng));
  EXPECT_NEAR(acc.mean(), ph.mean(), 0.03);
  EXPECT_NEAR(acc.variance(), ph.variance(), 0.1);
}

TEST(PhaseTypeTest, SampleHyperExponential) {
  Rng rng(77);
  const auto ph = PhaseType::hyper_exponential({0.2, 0.8}, {0.5, 5.0});
  Welford acc;
  for (int i = 0; i < 100000; ++i) acc.add(ph.sample(rng));
  EXPECT_NEAR(acc.mean(), ph.mean(), 0.02);
}

TEST(PhaseTypeTest, ValidationRejectsBadInputs) {
  // Negative off-diagonal.
  EXPECT_THROW(PhaseType(Matrix{{1.0, 0.0}}, Matrix{{-1.0, -0.5}, {0.0, -1.0}}),
               precondition_error);
  // Positive diagonal.
  EXPECT_THROW(PhaseType(Matrix{{1.0}}, Matrix{{1.0}}), precondition_error);
  // Row sum > 0.
  EXPECT_THROW(PhaseType(Matrix{{1.0}}, Matrix{{-1.0}} * -2.0), precondition_error);
  // Alpha sums to 0.
  EXPECT_THROW(PhaseType(Matrix{{0.0}}, Matrix{{-1.0}}), precondition_error);
  // Alpha > 1.
  EXPECT_THROW(PhaseType(Matrix{{1.5}}, Matrix{{-1.0}}), precondition_error);
}

TEST(PhaseTypeTest, DecayRateKnownCases) {
  EXPECT_NEAR(PhaseType::exponential(2.0).decay_rate(), 2.0, 1e-9);
  EXPECT_NEAR(PhaseType::erlang(4, 0.5).decay_rate(), 0.5, 1e-9);
  // Hypoexponential: decay is the *slowest* stage rate.
  const auto hypo =
      PhaseType::convolve(PhaseType::exponential(0.5), PhaseType::erlang(8, 4.0));
  EXPECT_NEAR(hypo.decay_rate(), 0.5, 1e-6);
  // Hyper-exponential: decay is the smallest branch rate.
  const auto hyper = PhaseType::hyper_exponential({0.5, 0.5}, {0.3, 3.0});
  EXPECT_NEAR(hyper.decay_rate(), 0.3, 1e-9);
}

TEST(PhaseTypeTest, MgfExistsExactlyBelowDecayRate) {
  const auto hypo =
      PhaseType::convolve(PhaseType::exponential(0.5), PhaseType::erlang(8, 4.0));
  EXPECT_NO_THROW(hypo.mgf(0.4));
  EXPECT_GT(hypo.mgf(0.4), 1.0);
  EXPECT_THROW(hypo.mgf(0.6), numeric_error);
  // Even-order Erlang used to slip through naive positivity checks.
  EXPECT_THROW(PhaseType::erlang(4, 0.5).mgf(0.8), numeric_error);
}

struct TwoMomentCase {
  double mean;
  double scv;
};

class FitTwoMomentsTest : public ::testing::TestWithParam<TwoMomentCase> {};

TEST_P(FitTwoMomentsTest, MatchesTargets) {
  const auto [mean, scv] = GetParam();
  const auto ph = PhaseType::fit_two_moments(mean, scv);
  EXPECT_NEAR(ph.mean(), mean, 1e-6 * mean) << "mean mismatch";
  EXPECT_NEAR(ph.scv(), scv, 0.02 * std::max(scv, 1.0)) << "scv mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FitTwoMomentsTest,
    ::testing::Values(TwoMomentCase{1.0, 1.0}, TwoMomentCase{2.0, 0.5},
                      TwoMomentCase{0.5, 0.25}, TwoMomentCase{3.0, 0.11},
                      TwoMomentCase{1.0, 2.0}, TwoMomentCase{10.0, 5.0},
                      TwoMomentCase{0.1, 1.5}, TwoMomentCase{7.0, 0.34}));

TEST(PhaseTypeTest, LstDerivativeMatchesMean) {
  // Numerical property: -d/ds LST(s) at 0 equals the mean.
  const auto ph = PhaseType::hyper_exponential({0.4, 0.6}, {0.7, 2.5});
  const double h = 1e-6;
  const double derivative = (ph.lst(h) - ph.lst(0.0)) / h;
  EXPECT_NEAR(-derivative, ph.mean(), 1e-4);
  EXPECT_NEAR(ph.lst(0.0), 1.0, 1e-12);
}

TEST(PhaseTypeTest, CdfConsistentWithSampledQuantiles) {
  Rng rng(321);
  const auto ph = PhaseType::convolve(PhaseType::erlang(2, 1.0),
                                      PhaseType::hyper_exponential({0.5, 0.5}, {0.5, 4.0}));
  dias::SampleSet samples;
  for (int i = 0; i < 60000; ++i) samples.add(ph.sample(rng));
  for (double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(ph.cdf(samples.quantile(q)), q, 0.01) << "q=" << q;
  }
}

TEST(PhaseTypeTest, MixtureManyValidation) {
  const std::vector<std::pair<double, PhaseType>> branches{
      {0.5, PhaseType::exponential(1.0)}};
  // Probabilities must sum to 1 (with the zero atom).
  EXPECT_THROW(PhaseType::mixture_many(branches, 0.2), precondition_error);
  EXPECT_THROW(PhaseType::mixture_many({}, 1.0), precondition_error);
  EXPECT_NO_THROW(PhaseType::mixture_many(branches, 0.5));
}

class ConvolutionClosureTest : public ::testing::TestWithParam<int> {};

TEST_P(ConvolutionClosureTest, CdfIsDistribution) {
  // Property: any convolution/mixture pipeline yields a valid distribution
  // (monotone CDF from 0 to 1).
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  PhaseType ph = PhaseType::exponential(rng.uniform(0.5, 3.0));
  for (int i = 0; i < 3; ++i) {
    const auto other = PhaseType::erlang(1 + static_cast<int>(rng.uniform_int(3)),
                                         rng.uniform(0.5, 3.0));
    ph = rng.bernoulli(0.5) ? PhaseType::convolve(ph, other)
                            : PhaseType::mixture(rng.uniform(), ph, other);
  }
  double prev = 0.0;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const double c = ph.cdf(t);
    EXPECT_GE(c, prev - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  EXPECT_GT(ph.cdf(200.0), 0.999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvolutionClosureTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace dias::model
