// Budget-conservation regression shared by the two sprint hosts: the
// cluster simulator's SprintBudget and the runtime SprintGovernor both run
// on runtime::EnergyBudget, and this suite locks that "one policy, two
// hosts" refactor in place. Over seeded random sprint traces it checks
//   * conservation: energy consumed never exceeds the initial budget plus
//     replenishment accrued over the elapsed time;
//   * level bounds: 0 <= level <= cap at every observation point;
//   * host agreement: SprintBudget (sim time) and EnergyBudget (runtime
//     seconds) report identical level/consumed on identical traces.
#include "runtime/energy_budget.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/sprinter.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace dias::runtime {
namespace {

EnergyBudgetConfig small_budget() {
  EnergyBudgetConfig c;
  c.base_power_w = 180.0;
  c.sprint_power_w = 270.0;  // extra power 90 W
  c.budget_joules = 450.0;   // 5 s of sprinting from full
  c.replenish_watts = 9.0;
  c.budget_cap_joules = 450.0;
  return c;
}

// One seeded begin/end trace: alternating idle gaps and sprint windows,
// with every sprint clipped to the depletion time begin_sprint() predicts
// (the contract both hosts honor).
struct TraceEvent {
  double begin = 0.0;
  double end = 0.0;
};

std::vector<TraceEvent> make_trace(const EnergyBudgetConfig& config, std::uint64_t seed,
                                   int sprints) {
  // Build against a scratch budget so depletion clipping matches exactly
  // what any replaying host will see.
  EnergyBudget scratch(config, 0.0);
  Rng rng(seed);
  std::vector<TraceEvent> trace;
  double t = 0.0;
  for (int i = 0; i < sprints; ++i) {
    t += rng.exponential(0.5);  // idle gap, mean 2 s
    const double depletion = scratch.begin_sprint(t);
    double end = t + rng.exponential(0.25);  // wanted sprint, mean 4 s
    if (std::isfinite(depletion)) end = std::min(end, depletion);
    scratch.end_sprint(end);
    trace.push_back({t, end});
    t = end;
  }
  return trace;
}

TEST(EnergyBudgetTest, ConservationOverSeededTraces) {
  const auto config = small_budget();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto trace = make_trace(config, seed, 40);
    EnergyBudget budget(config, 0.0);
    for (const auto& ev : trace) {
      budget.begin_sprint(ev.begin);
      budget.end_sprint(ev.end);
      // Invariant at every event: total joules drained can never exceed
      // what the battery ever held — initial charge plus replenishment
      // integrated over all elapsed time.
      const double ceiling = config.budget_joules + config.replenish_watts * ev.end;
      EXPECT_LE(budget.consumed(ev.end), ceiling + 1e-6) << "seed " << seed;
      EXPECT_GE(budget.level(ev.end), 0.0) << "seed " << seed;
      EXPECT_LE(budget.level(ev.end), config.budget_cap_joules + 1e-9) << "seed " << seed;
    }
  }
}

TEST(EnergyBudgetTest, SimAndRuntimeHostsAgreeOnIdenticalTraces) {
  // SprintConfig carries the same budget fields; the sim host must produce
  // bit-equal accounting when fed the same trace times.
  const auto config = small_budget();
  cluster::SprintConfig sim_config;
  sim_config.enabled = true;
  sim_config.base_power_w = config.base_power_w;
  sim_config.sprint_power_w = config.sprint_power_w;
  sim_config.budget_joules = config.budget_joules;
  sim_config.replenish_watts = config.replenish_watts;
  sim_config.budget_cap_joules = config.budget_cap_joules;

  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto trace = make_trace(config, seed, 60);
    EnergyBudget runtime_host(config, 0.0);
    cluster::SprintBudget sim_host(sim_config, 0.0);
    for (const auto& ev : trace) {
      const double runtime_depletion = runtime_host.begin_sprint(ev.begin);
      const double sim_depletion = sim_host.begin_sprint(ev.begin);
      EXPECT_EQ(runtime_depletion, sim_depletion) << "seed " << seed;
      runtime_host.end_sprint(ev.end);
      sim_host.end_sprint(ev.end);
      EXPECT_EQ(runtime_host.level(ev.end), sim_host.level(ev.end)) << "seed " << seed;
      EXPECT_EQ(runtime_host.consumed(ev.end), sim_host.consumed(ev.end))
          << "seed " << seed;
    }
  }
}

TEST(EnergyBudgetTest, ReplenishesWhileIdleUpToCap) {
  auto config = small_budget();
  config.budget_joules = 100.0;
  config.budget_cap_joules = 300.0;
  EnergyBudget budget(config, 0.0);
  EXPECT_DOUBLE_EQ(budget.level(0.0), 100.0);
  EXPECT_DOUBLE_EQ(budget.level(10.0), 190.0);   // +9 W * 10 s
  EXPECT_DOUBLE_EQ(budget.level(1000.0), 300.0); // clamped at the cap
  EXPECT_DOUBLE_EQ(budget.consumed(1000.0), 0.0);
}

TEST(EnergyBudgetTest, DepletionTimePredictsEmptyBattery) {
  const auto config = small_budget();  // net drain 81 W from 450 J
  EnergyBudget budget(config, 0.0);
  const double depletion = budget.begin_sprint(0.0);
  EXPECT_NEAR(depletion, 450.0 / 81.0, 1e-12);
  budget.end_sprint(depletion);
  EXPECT_NEAR(budget.level(depletion), 0.0, 1e-9);
  // Consumption includes the replenishment that flowed in during the
  // sprint: extra_power * duration.
  EXPECT_NEAR(budget.consumed(depletion), 90.0 * depletion, 1e-9);
}

TEST(EnergyBudgetTest, UnlimitedBudgetNeverDepletes) {
  EnergyBudgetConfig config;  // default: infinite budget
  EnergyBudget budget(config, 0.0);
  EXPECT_TRUE(std::isinf(budget.begin_sprint(1.0)));
  budget.end_sprint(100.0);
  EXPECT_TRUE(budget.has_budget(100.0));
  EXPECT_NEAR(budget.consumed(100.0), 90.0 * 99.0, 1e-6);
}

TEST(EnergyBudgetTest, GaugesMirrorStateChanges) {
  obs::Registry reg;
  EnergyBudget budget(small_budget(), 0.0);
  budget.attach_gauges(&reg.gauge("level"), &reg.gauge("consumed"));
  EXPECT_DOUBLE_EQ(reg.gauge("level").value(), 450.0);
  budget.begin_sprint(0.0);
  budget.end_sprint(2.0);
  EXPECT_NEAR(reg.gauge("level").value(), 450.0 - 81.0 * 2.0, 1e-9);
  EXPECT_NEAR(reg.gauge("consumed").value(), 180.0, 1e-9);
}

TEST(EnergyBudgetTest, Validation) {
  EnergyBudgetConfig bad = small_budget();
  bad.sprint_power_w = 100.0;  // below base power
  EXPECT_THROW(EnergyBudget(bad, 0.0), dias::precondition_error);
  bad = small_budget();
  bad.replenish_watts = -1.0;
  EXPECT_THROW(EnergyBudget(bad, 0.0), dias::precondition_error);
  bad = small_budget();
  bad.budget_joules = -5.0;
  EXPECT_THROW(EnergyBudget(bad, 0.0), dias::precondition_error);
  EnergyBudget budget(small_budget(), 10.0);
  EXPECT_THROW(budget.level(5.0), dias::precondition_error);  // time reversal
  EXPECT_THROW(budget.end_sprint(11.0), dias::precondition_error);  // no sprint
}

}  // namespace
}  // namespace dias::runtime
