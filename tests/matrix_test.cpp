#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dias {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
  EXPECT_THROW(m(2, 0), precondition_error);
  EXPECT_THROW(m(0, 3), precondition_error);
}

TEST(MatrixTest, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0}, {1.0, 2.0}}), precondition_error);
}

TEST(MatrixTest, ArithmeticOps) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  const Matrix a(2, 2);
  const Matrix b(3, 3);
  EXPECT_THROW(a + b, precondition_error);
  EXPECT_THROW(a * b, precondition_error);
}

TEST(MatrixTest, TransposeAndNorms) {
  const Matrix m{{1.0, -2.0, 3.0}, {-4.0, 5.0, -6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), -6.0);
  EXPECT_DOUBLE_EQ(m.inf_norm(), 15.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 6.0);
  EXPECT_DOUBLE_EQ(m.sum(), -3.0);
}

TEST(MatrixTest, Blocks) {
  Matrix m(4, 4);
  const Matrix b{{1.0, 2.0}, {3.0, 4.0}};
  m.set_block(1, 2, b);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 3), 4.0);
  const Matrix out = m.block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(out(1, 1), 4.0);
  EXPECT_THROW(m.set_block(3, 3, b), precondition_error);
  EXPECT_THROW(m.block(3, 3, 2, 2), precondition_error);
}

TEST(MatrixTest, IdentityAndOnes) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix ones = Matrix::ones_column(3);
  EXPECT_EQ(ones.cols(), 1u);
  EXPECT_DOUBLE_EQ((i * ones).sum(), 3.0);
}

TEST(SolveTest, SolvesLinearSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Matrix b{{5.0}, {10.0}};
  const Matrix x = solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(SolveTest, MultipleRhs) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  const Matrix prod = a * inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(SolveTest, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(inverse(a), numeric_error);
}

TEST(SolveTest, PivotingHandlesZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix b{{2.0}, {3.0}};
  const Matrix x = solve(a, b);
  EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(ExpmTest, DiagonalMatrix) {
  const Matrix a{{1.0, 0.0}, {0.0, -2.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-10);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(ExpmTest, NilpotentMatrix) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
  const Matrix a{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-12);
}

TEST(ExpmTest, RotationMatrix) {
  // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]]
  const double t = 1.3;
  const Matrix a{{0.0, -t}, {t, 0.0}};
  const Matrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-10);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
}

TEST(ExpmTest, GeneratorRowSumsPreserved) {
  // exp(Qt) of a CTMC generator is stochastic: rows sum to 1.
  const Matrix q{{-2.0, 2.0, 0.0}, {1.0, -3.0, 2.0}, {0.0, 4.0, -4.0}};
  const Matrix p = expm(q * 0.7);
  for (std::size_t i = 0; i < 3; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      rowsum += p(i, j);
      EXPECT_GE(p(i, j), -1e-12);
    }
    EXPECT_NEAR(rowsum, 1.0, 1e-10);
  }
}

TEST(StationaryTest, CtmcTwoState) {
  // Q = [[-a, a],[b, -b]] -> pi = (b, a)/(a+b)
  const double a = 2.0, b = 3.0;
  const Matrix q{{-a, a}, {b, -b}};
  const Matrix pi = ctmc_stationary(q);
  EXPECT_NEAR(pi(0, 0), b / (a + b), 1e-12);
  EXPECT_NEAR(pi(0, 1), a / (a + b), 1e-12);
}

TEST(StationaryTest, CtmcBalanceResidual) {
  const Matrix q{{-1.0, 0.5, 0.5}, {0.2, -0.7, 0.5}, {1.0, 1.0, -2.0}};
  const Matrix pi = ctmc_stationary(q);
  const Matrix residual = pi * q;
  EXPECT_LT(residual.max_abs(), 1e-10);
  EXPECT_NEAR(pi.sum(), 1.0, 1e-12);
}

TEST(StationaryTest, DtmcTwoState) {
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const Matrix pi = dtmc_stationary(p);
  // pi = (0.8, 0.2)
  EXPECT_NEAR(pi(0, 0), 0.8, 1e-12);
  EXPECT_NEAR(pi(0, 1), 0.2, 1e-12);
}

}  // namespace
}  // namespace dias
