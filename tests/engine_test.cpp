#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace dias::engine {
namespace {

Engine::Options opts(double drop = 0.0) {
  Engine::Options o;
  o.workers = 4;
  o.seed = 42;
  o.drop_ratio = drop;
  return o;
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(FindMissingPartitionsTest, KeepsCeilFraction) {
  Rng rng(1);
  EXPECT_EQ(find_missing_partitions(50, 0.0, rng).size(), 50u);
  EXPECT_EQ(find_missing_partitions(50, 0.1, rng).size(), 45u);
  EXPECT_EQ(find_missing_partitions(50, 0.2, rng).size(), 40u);
  EXPECT_EQ(find_missing_partitions(10, 0.15, rng).size(), 9u);  // ceil(8.5)
  EXPECT_EQ(find_missing_partitions(10, 1.0, rng).size(), 0u);
  EXPECT_EQ(find_missing_partitions(1, 0.9, rng).size(), 1u);    // ceil(0.1)
}

TEST(FindMissingPartitionsTest, ReturnsSortedUniqueValidIndices) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sel = find_missing_partitions(30, 0.4, rng);
    std::set<std::size_t> unique(sel.begin(), sel.end());
    EXPECT_EQ(unique.size(), sel.size());
    EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
    for (auto i : sel) EXPECT_LT(i, 30u);
  }
}

// Property sweep: for every (n, theta) the selection has exactly
// ceil(n (1 - theta)) elements, sorted, unique, in range — and is a pure
// function of the generator state (same seed, same answer).
TEST(FindMissingPartitionsTest, PropertySweepSizeSortedUniqueInRange) {
  const std::size_t sizes[] = {1, 2, 3, 7, 10, 64, 101};
  const double thetas[] = {0.0, 0.01, 0.25, 0.5, 0.77, 0.99};
  for (const std::size_t n : sizes) {
    for (const double theta : thetas) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " theta=" << theta);
      Rng rng(1234);
      const auto sel = find_missing_partitions(n, theta, rng);
      const auto expected = static_cast<std::size_t>(
          std::ceil(static_cast<double>(n) * (1.0 - theta) - 1e-12));
      EXPECT_EQ(sel.size(), expected);
      EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
      EXPECT_EQ(std::set<std::size_t>(sel.begin(), sel.end()).size(), sel.size());
      for (const auto i : sel) EXPECT_LT(i, n);
    }
  }
}

TEST(FindMissingPartitionsTest, EdgeCases) {
  Rng rng(5);
  // A single partition survives any theta < 1: ceil(1 * (1 - theta)) = 1.
  EXPECT_EQ(find_missing_partitions(1, 0.0, rng), std::vector<std::size_t>{0});
  EXPECT_EQ(find_missing_partitions(1, 0.9999, rng), std::vector<std::size_t>{0});
  // theta -> 1^-: one task always remains, only theta == 1 drops them all.
  EXPECT_EQ(find_missing_partitions(10, 0.9999, rng).size(), 1u);
  EXPECT_EQ(find_missing_partitions(10, 1.0, rng).size(), 0u);
  // theta = 0 is the identity selection.
  std::vector<std::size_t> all(25);
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_EQ(find_missing_partitions(25, 0.0, rng), all);
}

TEST(FindMissingPartitionsTest, DeterministicPerSeed) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    Rng a(seed), b(seed);
    EXPECT_EQ(find_missing_partitions(60, 0.35, a), find_missing_partitions(60, 0.35, b));
  }
  Rng a(1), b(2);
  EXPECT_NE(find_missing_partitions(100, 0.5, a), find_missing_partitions(100, 0.5, b));
}

TEST(FindMissingPartitionsTest, SelectionIsRandomized) {
  Rng rng(11);
  const auto a = find_missing_partitions(100, 0.5, rng);
  const auto b = find_missing_partitions(100, 0.5, rng);
  EXPECT_NE(a, b);  // overwhelmingly likely
}

TEST(EngineTest, ParallelizeSplitsEvenly) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(10), 3);
  EXPECT_EQ(ds.partitions(), 3u);
  EXPECT_EQ(ds.total_size(), 10u);
  // Balanced split: partition sizes 3/3/4 or similar (within 1).
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_GE(ds.partition(p).size(), 3u);
    EXPECT_LE(ds.partition(p).size(), 4u);
  }
  EXPECT_EQ(ds.collect(), iota_vec(10));
}

TEST(EngineTest, MapPreservesPartitioning) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(20), 5);
  const auto doubled = eng.map(ds, [](const int& x) { return x * 2; });
  EXPECT_EQ(doubled.partitions(), 5u);
  const auto all = doubled.collect();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], 2 * i);
}

TEST(EngineTest, FlatMapExpands) {
  Engine eng(opts());
  const auto ds = eng.parallelize(std::vector<int>{1, 2, 3}, 2);
  const auto out = eng.flat_map(ds, [](const int& x) {
    return std::vector<int>(static_cast<std::size_t>(x), x);
  });
  EXPECT_EQ(out.total_size(), 6u);  // 1 + 2 + 3
}

TEST(EngineTest, FilterKeepsMatching) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(100), 4);
  const auto evens = eng.filter(ds, [](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.total_size(), 50u);
}

TEST(EngineTest, ReduceByKeyAggregates) {
  Engine eng(opts());
  std::vector<std::pair<std::string, int>> data;
  for (int i = 0; i < 30; ++i) data.emplace_back(i % 3 == 0 ? "a" : "b", 1);
  const auto ds = eng.parallelize(std::move(data), 4);
  const auto reduced = eng.reduce_by_key(ds, [](int a, int b) { return a + b; }, 3);
  int a_count = 0, b_count = 0;
  for (const auto& [k, v] : reduced.collect()) {
    if (k == "a") a_count = v;
    if (k == "b") b_count = v;
  }
  EXPECT_EQ(a_count, 10);
  EXPECT_EQ(b_count, 20);
}

TEST(EngineTest, AggregateSums) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(101), 7);
  const int total = eng.aggregate(ds, 0, [](int a, int b) { return a + b; });
  EXPECT_EQ(total, 5050);
  EXPECT_EQ(eng.count(ds), 101u);
}

TEST(EngineTest, DropLeavesEmptyPartitions) {
  Engine eng(opts(0.5));
  const auto ds = eng.parallelize(iota_vec(100), 10);
  StageOptions so;
  so.name = "droppable";
  so.droppable = true;
  const auto out = eng.map(ds, [](const int& x) { return x; }, so);
  EXPECT_EQ(out.partitions(), 10u);  // partition count stable
  std::size_t non_empty = 0;
  for (std::size_t p = 0; p < out.partitions(); ++p) {
    if (!out.partition(p).empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 5u);
  EXPECT_EQ(out.total_size(), 50u);
}

TEST(EngineTest, NonDroppableStageIgnoresDropRatio) {
  Engine eng(opts(0.9));
  const auto ds = eng.parallelize(iota_vec(100), 10);
  StageOptions so;
  so.droppable = false;
  const auto out = eng.map(ds, [](const int& x) { return x; }, so);
  EXPECT_EQ(out.total_size(), 100u);
}

TEST(EngineTest, DropOverridePerStage) {
  Engine eng(opts(0.0));
  const auto ds = eng.parallelize(iota_vec(100), 10);
  StageOptions so;
  so.droppable = true;
  so.drop_ratio_override = 0.3;
  const auto out = eng.map(ds, [](const int& x) { return x; }, so);
  EXPECT_EQ(out.total_size(), 70u);
}

TEST(EngineTest, StageLogRecordsExecution) {
  Engine eng(opts(0.2));
  const auto ds = eng.parallelize(iota_vec(100), 10);
  eng.clear_stage_log();
  StageOptions so;
  so.name = "logged-map";
  so.droppable = true;
  eng.map(ds, [](const int& x) { return x; }, so);
  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.name, "logged-map");
  EXPECT_EQ(info.total_partitions, 10u);
  EXPECT_EQ(info.executed_partitions, 8u);
  EXPECT_DOUBLE_EQ(info.applied_drop_ratio, 0.2);
  EXPECT_EQ(info.task_times_s.size(), 8u);
  EXPECT_GE(info.duration_s, 0.0);
  EXPECT_GE(eng.logged_duration(), info.duration_s);
}

TEST(EngineTest, ReduceByKeyLogsShuffleAndReduceStages) {
  Engine eng(opts());
  std::vector<std::pair<int, int>> data{{1, 1}, {2, 1}, {1, 1}};
  const auto ds = eng.parallelize(std::move(data), 2);
  eng.clear_stage_log();
  eng.reduce_by_key(ds, [](int a, int b) { return a + b; }, 2);
  ASSERT_EQ(eng.stage_log().size(), 2u);
  EXPECT_EQ(eng.stage_log()[0].kind, EngineStageKind::kShuffleWrite);
  EXPECT_EQ(eng.stage_log()[1].kind, EngineStageKind::kReduce);
}

TEST(EngineTest, SetDropRatioValidation) {
  Engine eng(opts());
  EXPECT_THROW(eng.set_drop_ratio(1.1), dias::precondition_error);
  EXPECT_THROW(eng.set_drop_ratio(-0.1), dias::precondition_error);
  eng.set_drop_ratio(0.5);
  EXPECT_DOUBLE_EQ(eng.options().drop_ratio, 0.5);
  // theta == 1.0 is a valid (degenerate) drop ratio: every droppable task
  // is skipped, matching find_missing_partitions' [0,1] contract.
  eng.set_drop_ratio(1.0);
  EXPECT_DOUBLE_EQ(eng.options().drop_ratio, 1.0);
}

// Regression: Engine::Options / set_drop_ratio used to reject theta == 1.0
// while find_missing_partitions accepted the full [0,1] range. The whole
// pipeline now agrees on [0,1]: a theta == 1 droppable stage executes
// nothing and reports effective_drop_ratio == 1.
TEST(EngineTest, ThetaOneDropsEveryDroppableTask) {
  Engine eng(opts(1.0));
  const auto ds = eng.parallelize(iota_vec(1000), 10);
  StageOptions so;
  so.name = "all-dropped";
  so.droppable = true;
  const auto out = eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>(part); }, so);
  EXPECT_EQ(out.total_size(), 0u);  // every partition dropped -> empty
  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.total_partitions, 10u);
  EXPECT_EQ(info.executed_partitions, 0u);
  EXPECT_DOUBLE_EQ(info.applied_drop_ratio, 1.0);
  EXPECT_DOUBLE_EQ(info.effective_drop_ratio, 1.0);

  // Non-droppable stages ignore the engine theta entirely.
  eng.clear_stage_log();
  StageOptions exact_so;
  exact_so.droppable = false;
  const auto exact = eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>(part); }, exact_so);
  EXPECT_EQ(exact.total_size(), 1000u);
  EXPECT_DOUBLE_EQ(eng.stage_log().front().effective_drop_ratio, 0.0);

  // The per-stage override accepts the same degenerate value.
  eng.clear_stage_log();
  eng.set_drop_ratio(0.0);
  StageOptions ov;
  ov.droppable = true;
  ov.drop_ratio_override = 1.0;
  eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>(part); }, ov);
  EXPECT_EQ(eng.stage_log().front().executed_partitions, 0u);
}

TEST(FindMissingPartitionsTest, KeepZeroAndEmptyInputBoundaries) {
  Rng rng(5);
  // keep == 0 only at exactly theta == 1 (ceil keeps one task otherwise).
  EXPECT_EQ(find_missing_partitions(1, 1.0, rng).size(), 0u);
  EXPECT_EQ(find_missing_partitions(64, 1.0, rng).size(), 0u);
  EXPECT_EQ(find_missing_partitions(64, 0.999, rng).size(), 1u);
  // n == 0 is empty for any theta, including the extremes.
  EXPECT_TRUE(find_missing_partitions(0, 0.0, rng).empty());
  EXPECT_TRUE(find_missing_partitions(0, 0.5, rng).empty());
  EXPECT_TRUE(find_missing_partitions(0, 1.0, rng).empty());
}

// An empty stage (a zero-partition dataset) must log a consistent
// StageInfo: nothing executed, nothing dropped, and effective_drop_ratio
// pinned to 0 (vacuously exact) regardless of the configured theta.
TEST(EngineTest, EmptyStageInfoIsConsistent) {
  Engine eng(opts(0.8));
  const Dataset<int> empty;  // zero partitions
  StageOptions so;
  so.name = "empty";
  so.droppable = true;
  const auto out = eng.map_partitions(
      empty, [](const std::vector<int>& part) { return std::vector<int>(part); }, so);
  EXPECT_EQ(out.partitions(), 0u);
  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(info.total_partitions, 0u);
  EXPECT_EQ(info.executed_partitions, 0u);
  EXPECT_DOUBLE_EQ(info.applied_drop_ratio, 0.8);
  EXPECT_DOUBLE_EQ(info.effective_drop_ratio, 0.0);
  EXPECT_TRUE(info.failed_partition_ids.empty());
}

TEST(EngineTest, SampleKeepsApproximateFraction) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(20000), 20);
  const auto sampled = eng.sample(ds, 0.3);
  EXPECT_EQ(sampled.partitions(), 20u);
  EXPECT_NEAR(static_cast<double>(sampled.total_size()), 6000.0, 300.0);
  // Degenerate fractions.
  EXPECT_EQ(eng.sample(ds, 0.0).total_size(), 0u);
  EXPECT_EQ(eng.sample(ds, 1.0).total_size(), 20000u);
  EXPECT_THROW(eng.sample(ds, 1.5), dias::precondition_error);
}

TEST(EngineTest, TwoStageSamplingComposes) {
  // ApproxHadoop-style: drop 20% of tasks AND sample 50% of records.
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(10000), 10);
  StageOptions drop_opts;
  drop_opts.droppable = true;
  drop_opts.drop_ratio_override = 0.2;
  const auto task_dropped = eng.map(ds, [](const int& x) { return x; }, drop_opts);
  const auto both = eng.sample(task_dropped, 0.5);
  EXPECT_NEAR(static_cast<double>(both.total_size()), 10000.0 * 0.8 * 0.5, 400.0);
}

TEST(EngineTest, DistinctRemovesDuplicatesAcrossPartitions) {
  Engine eng(opts());
  std::vector<int> data;
  for (int i = 0; i < 300; ++i) data.push_back(i % 17);
  const auto ds = eng.parallelize(std::move(data), 6);
  const auto unique = eng.distinct(ds, 4);
  EXPECT_EQ(unique.total_size(), 17u);
  std::set<int> seen;
  for (int x : unique.collect()) seen.insert(x);
  EXPECT_EQ(seen.size(), 17u);
}

TEST(EngineTest, UnionConcatenatesPartitions) {
  Engine eng(opts());
  const auto a = eng.parallelize(iota_vec(10), 2);
  const auto b = eng.parallelize(iota_vec(6), 3);
  const auto u = eng.union_datasets(a, b);
  EXPECT_EQ(u.partitions(), 5u);
  EXPECT_EQ(u.total_size(), 16u);
}

TEST(EngineTest, GroupByKeyGathersValues) {
  Engine eng(opts());
  std::vector<std::pair<int, int>> data;
  for (int i = 0; i < 12; ++i) data.emplace_back(i % 3, i);
  const auto ds = eng.parallelize(std::move(data), 3);
  const auto grouped = eng.group_by_key(ds, 2);
  std::size_t total_values = 0;
  for (const auto& [k, vs] : grouped.collect()) {
    EXPECT_EQ(vs.size(), 4u) << "key " << k;
    total_values += vs.size();
  }
  EXPECT_EQ(total_values, 12u);
}

class DropSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DropSweepTest, ExecutedFractionMatchesTheta) {
  const double theta = GetParam();
  Engine eng(opts(theta));
  const auto ds = eng.parallelize(iota_vec(1000), 50);
  eng.clear_stage_log();
  StageOptions so;
  so.droppable = true;
  eng.map(ds, [](const int& x) { return x; }, so);
  const auto& info = eng.stage_log().front();
  const auto expected = static_cast<std::size_t>(
      std::ceil(50.0 * (1.0 - theta) - 1e-12));
  EXPECT_EQ(info.executed_partitions, expected);
}

INSTANTIATE_TEST_SUITE_P(Thetas, DropSweepTest,
                         ::testing::Values(0.0, 0.1, 0.2, 0.33, 0.4, 0.5, 0.66, 0.8, 0.9));

// --- cooperative cancellation (ISSUE 5) ------------------------------------

TEST(EngineCancelTest, PreCancelledTokenStopsStageAtEntry) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(100), 10);
  CancellationToken token;
  token.request_cancel();
  eng.set_cancellation(token);
  eng.clear_stage_log();
  std::atomic<int> ran{0};
  EXPECT_THROW(eng.map(ds, [&](const int& x) { ++ran; return x; }),
               JobCancelledError);
  EXPECT_EQ(ran.load(), 0) << "no task body may run after entry cancellation";
  EXPECT_TRUE(eng.stage_log().empty()) << "entry cancellation logs no stage";
}

TEST(EngineCancelTest, MidStageCancelAbandonsRemainingPartitions) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(400), 200);
  CancellationToken token;
  eng.set_cancellation(token);
  eng.clear_stage_log();
  std::atomic<int> ran{0};
  EXPECT_THROW(eng.map(ds,
                       [&](const int& x) {
                         if (++ran == 8) token.request_cancel();
                         std::this_thread::sleep_for(std::chrono::milliseconds(1));
                         return x;
                       }),
               JobCancelledError);
  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_TRUE(info.cancelled);
  EXPECT_GT(info.cancelled_partitions, 0u);
  EXPECT_LT(info.executed_partitions, info.total_partitions);
  EXPECT_EQ(info.executed_partitions + info.cancelled_partitions,
            info.total_partitions);
  // The engine is reusable after cancellation once the token is cleared.
  eng.clear_cancellation();
  const auto out = eng.map(ds, [](const int& x) { return x + 1; });
  EXPECT_EQ(out.partitions(), 200u);
}

TEST(EngineCancelTest, DetachedTokenIsZeroCost) {
  Engine eng(opts());
  const auto ds = eng.parallelize(iota_vec(100), 10);
  CancellationToken token;
  eng.set_cancellation(token);
  eng.clear_cancellation();
  const auto out = eng.map(ds, [](const int& x) { return 2 * x; });
  EXPECT_EQ(out.total_size(), 100u);
  EXPECT_FALSE(eng.stage_log().back().cancelled);
}

TEST(EngineCancelTest, FaultPathHonoursCancellationInBackoff) {
  // Every attempt fails and backoff is long: without cancellation this
  // stage would spend ~seconds retrying. The token must cut the sleeps
  // short and classify the unfinished partitions as cancelled.
  Engine::Options o = opts();
  o.fault.injection.fail_prob = 1.0;
  o.fault.injection.seed = 7;
  o.fault.max_attempts = 50;
  o.fault.retry_backoff_ms = 50.0;
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(64), 32);
  CancellationToken token;
  eng.set_cancellation(token);
  eng.clear_stage_log();
  StageOptions so;
  so.droppable = false;  // retries matter: no degradation escape hatch
  const auto t0 = std::chrono::steady_clock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.request_cancel();
  });
  EXPECT_THROW(eng.map(ds, [](const int& x) { return x; }, so), JobCancelledError);
  canceller.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 5.0) << "cancellation must pre-empt the retry backoff";
  ASSERT_EQ(eng.stage_log().size(), 1u);
  EXPECT_TRUE(eng.stage_log().front().cancelled);
  EXPECT_GT(eng.stage_log().front().cancelled_partitions, 0u);
}

TEST(EngineCancelTest, CancellationOutranksTaskFailure) {
  // A non-droppable stage with both dead tasks and a fired token reports
  // the cancellation, not TaskFailedError: the job is being torn down, so
  // task failure is no longer actionable.
  Engine::Options o = opts();
  o.fault.injection.fail_prob = 0.5;  // some tasks die for good (1 attempt)
  o.fault.injection.seed = 3;
  o.fault.max_attempts = 1;
  Engine eng(o);
  const auto ds = eng.parallelize(iota_vec(64), 32);
  CancellationToken token;
  std::atomic<int> calls{0};
  eng.set_cancellation(token);
  StageOptions so;
  so.droppable = false;
  try {
    eng.map(ds,
            [&](const int& x) {
              if (++calls >= 1) token.request_cancel();
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              return x;
            },
            so);
    FAIL() << "expected JobCancelledError";
  } catch (const JobCancelledError&) {
  } catch (const TaskFailedError&) {
    FAIL() << "cancellation must outrank task failure";
  }
  EXPECT_TRUE(eng.stage_log().back().cancelled);
}

}  // namespace
}  // namespace dias::engine
