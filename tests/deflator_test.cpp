#include "core/deflator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::core {
namespace {

model::JobClassProfile profile(double lambda) {
  model::JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(8, 0.0);
  p.map_task_pmf.back() = 1.0;
  p.reduce_task_pmf.assign(2, 0.0);
  p.reduce_task_pmf.back() = 1.0;
  p.map_rate = 1.0;
  p.reduce_rate = 1.0;
  p.shuffle_rate = 2.0;
  p.mean_overhead_theta0 = 2.0;
  p.mean_overhead_theta90 = 1.0;
  return p;
}

AccuracyProfile accuracy() { return AccuracyProfile::paper_word_count(); }

TEST(DeflatorTest, NoConstraintsMeansNoDropping) {
  // With unconstrained latency, the minimum-dropping plan is theta = 0.
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy());
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.theta[0], 0.0);
  EXPECT_DOUBLE_EQ(plan.theta[1], 0.0);
}

TEST(DeflatorTest, AccuracyToleranceCapsTheta) {
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy());
  // Low class tolerates 15% error -> theta <= 0.2; force dropping via a
  // tight latency cap on the low class.
  std::vector<ClassConstraint> constraints{{15.0, 0.0, 1.0}, {0.0, 1e18, 1.0}};
  // Find the response at theta 0.2 first to set an achievable cap.
  constraints[0].max_mean_response_s = 1e18;
  auto relaxed = deflator.plan(constraints);
  ASSERT_TRUE(relaxed.feasible);
  const double t0_response = relaxed.prediction.per_class[0].mean_response;
  // Now require a bit less than the theta=0 response: the deflator must
  // drop, but never beyond the 15% accuracy cap (0.2).
  constraints[0].max_mean_response_s = 0.95 * t0_response;
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.theta[0], 0.0);
  EXPECT_LE(plan.theta[0], 0.2 + 1e-9);
  EXPECT_DOUBLE_EQ(plan.theta[1], 0.0);  // high class stays exact
  EXPECT_LE(plan.predicted_error[0], 15.0 + 1e-9);
}

TEST(DeflatorTest, PicksMinimumThetaSatisfyingConstraint) {
  // Section 5.2.1: with a 30% error budget (theta <= ~0.37) but a latency
  // cap already met at a smaller theta, the deflator picks the smaller.
  // Load is high enough (~0.78) that dropping visibly moves the high
  // class's waiting time.
  Deflator deflator({profile(0.1), profile(0.01)}, accuracy());
  std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  auto relaxed = deflator.plan(constraints);
  const double high_at_theta0 = relaxed.prediction.per_class[1].mean_response;

  // Cap the HIGH class response slightly below its theta=0 value: only
  // dropping the low class can achieve it.
  constraints[1].max_mean_response_s = 0.97 * high_at_theta0;
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.theta[0], 0.0);
  // Verify minimality: the next-smaller grid theta must violate the cap.
  Deflator::Options opts;
  const auto& grid = opts.theta_grid;
  double prev = 0.0;
  for (double g : grid) {
    if (g < plan.theta[0]) prev = std::max(prev, g);
  }
  if (prev < plan.theta[0]) {
    const auto pred = model::ResponseTimeModel::predict(
        deflator.profiles(), std::vector<double>{prev, 0.0},
        model::Discipline::kNonPreemptive);
    EXPECT_GT(pred.per_class[1].mean_response, constraints[1].max_mean_response_s);
  }
}

TEST(DeflatorTest, InfeasibleWhenCapsImpossible) {
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy());
  const std::vector<ClassConstraint> constraints{{0.0, 0.001, 1.0}, {0.0, 0.001, 1.0}};
  const auto plan = deflator.plan(constraints);
  EXPECT_FALSE(plan.feasible);
}

TEST(DeflatorTest, UnstableWorkloadInfeasibleWithoutDropping) {
  // Overloaded system (rho ~ 1.06 at theta = 0): only dropping makes it
  // stable; zero error budget forbids dropping -> infeasible.
  Deflator deflator({profile(0.14), profile(0.01)}, accuracy());
  const std::vector<ClassConstraint> tight{{0.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan_tight = deflator.plan(tight);
  EXPECT_FALSE(plan_tight.feasible);
  // Allowing dropping on the low class recovers feasibility.
  const std::vector<ClassConstraint> loose{{63.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan_loose = deflator.plan(loose);
  EXPECT_TRUE(plan_loose.feasible);
  EXPECT_GT(plan_loose.theta[0], 0.0);
}

TEST(DeflatorTest, SprintTimeoutAssignedToExactClasses) {
  Deflator::Options opts;
  opts.sprint_timeout_s = 65.0;
  opts.sprint_speedup = 2.5;
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy(), opts);
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  // High class (theta 0) sprints; any dropped class does not.
  EXPECT_DOUBLE_EQ(plan.sprint_timeout_s[1], 65.0);
  if (plan.theta[0] > 0.0) {
    EXPECT_TRUE(std::isinf(plan.sprint_timeout_s[0]));
  }
}

TEST(DeflatorTest, FrontierLatencyDecreasesWithTheta) {
  Deflator deflator({profile(0.03), profile(0.005)}, accuracy());
  const std::vector<double> base{0.0, 0.0};
  const auto frontier = deflator.frontier(0, base);
  ASSERT_GT(frontier.size(), 3u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LE(frontier[i].mean_response_s, frontier[i - 1].mean_response_s + 1e-9);
    EXPECT_GE(frontier[i].error_percent, frontier[i - 1].error_percent - 1e-9);
  }
}

TEST(DeflatorTest, PerClassAccuracyProfilesCapIndependently) {
  // Low class: forgiving analysis (error 10 * theta); high class is also
  // given an error budget but a brutal curve (error 200 * theta) caps its
  // theta near zero.
  const AccuracyProfile forgiving({{0.0, 0.0}, {0.8, 8.0}});
  const AccuracyProfile brutal({{0.0, 0.0}, {0.8, 160.0}});
  Deflator::Options opts;
  Deflator deflator({profile(0.1), profile(0.02)}, {forgiving, brutal}, opts);
  // Both classes tolerate 8% error; force dropping via instability (load
  // ~0.78 at theta 0 is stable, so cap the low class response instead).
  std::vector<ClassConstraint> constraints{{8.0, 1e18, 1.0}, {8.0, 1e18, 1.0}};
  const auto relaxed = deflator.plan(constraints);
  ASSERT_TRUE(relaxed.feasible);
  constraints[0].max_mean_response_s =
      0.7 * relaxed.prediction.per_class[0].mean_response;
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  // The forgiving class can drop a lot; the brutal one at most 0.04-ish
  // (error 160 * theta / 0.8 <= 8 -> theta <= 0.04, below the 0.05 grid
  // step, so it stays at 0).
  EXPECT_GT(plan.theta[0], 0.2);
  EXPECT_DOUBLE_EQ(plan.theta[1], 0.0);
  EXPECT_LE(plan.predicted_error[0], 8.0 + 1e-9);
}

TEST(DeflatorTest, SharedProfileReplicatesAcrossClasses) {
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy());
  EXPECT_NEAR(deflator.accuracy(0).error_at(0.2), deflator.accuracy(1).error_at(0.2),
              1e-12);
}

TEST(DeflatorTest, TailEstimationFillsP95) {
  Deflator::Options opts;
  opts.estimate_tails = true;
  opts.tail_sample_jobs = 20000;
  Deflator deflator({profile(0.05), profile(0.02)}, accuracy(), opts);
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.predicted_p95.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    // Tails dominate means; both must be positive and consistent.
    EXPECT_GT(plan.predicted_p95[k], plan.prediction.per_class[k].mean_response);
  }
  // High class tail below low class tail (priority advantage).
  EXPECT_LT(plan.predicted_p95[1], plan.predicted_p95[0]);
}

TEST(DeflatorTest, TailEstimationOffByDefault) {
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy());
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.predicted_p95.empty());
}

TEST(DeflatorTest, PublishesPlanToObservabilitySinks) {
  obs::Registry reg;
  obs::Tracer tracer;
  Deflator::Options options;
  options.metrics = &reg;
  options.tracer = &tracer;
  Deflator deflator({profile(0.02), profile(0.005)}, accuracy(), options);
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(reg.gauge("deflator.theta.k0").value(), plan.theta[0]);
  EXPECT_DOUBLE_EQ(reg.gauge("deflator.theta.k1").value(), plan.theta[1]);
  EXPECT_DOUBLE_EQ(reg.gauge("deflator.objective_s").value(), plan.objective);
  EXPECT_EQ(tracer.event_count(), 1u);
  const std::string summary = tracer.summary_json();
  EXPECT_NE(summary.find("\"events\":1"), std::string::npos);
}

TEST(DeflatorTest, Validation) {
  EXPECT_THROW(Deflator({}, accuracy()), dias::precondition_error);
  Deflator deflator({profile(0.02)}, accuracy());
  EXPECT_THROW(deflator.plan(std::vector<ClassConstraint>{}), dias::precondition_error);
  EXPECT_THROW(deflator.frontier(5, std::vector<double>{0.0}), dias::precondition_error);
  Deflator::Options bad;
  bad.theta_grid = {1.0};
  EXPECT_THROW(Deflator({profile(0.02)}, accuracy(), bad), dias::precondition_error);
}

}  // namespace
}  // namespace dias::core
