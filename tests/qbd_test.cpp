#include "model/qbd.hpp"

#include "model/priority_queue_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dias::model {
namespace {

TEST(QbdTest, Mm1RMatrixIsScalarRho) {
  // M/M/1 as a QBD has R = lambda/mu (scalar).
  const double lambda = 0.4, mu = 1.0;
  const Matrix a0{{lambda}};
  const Matrix a1{{-(lambda + mu)}};
  const Matrix a2{{mu}};
  const Matrix r = solve_qbd_r(a0, a1, a2);
  EXPECT_NEAR(r(0, 0), lambda / mu, 1e-10);
}

TEST(QbdTest, RSolvesQuadraticEquation) {
  // Random-ish stable QBD: verify A0 + R A1 + R^2 A2 = 0.
  const Matrix a0{{0.2, 0.1}, {0.0, 0.3}};
  const Matrix a2{{0.5, 0.1}, {0.2, 0.6}};
  Matrix a1(2, 2);
  // Make row sums of A0+A1+A2 zero with negative diagonal.
  a1(0, 0) = -(0.2 + 0.1 + 0.5 + 0.1 + 0.2);
  a1(0, 1) = 0.2;
  a1(1, 0) = 0.1;
  a1(1, 1) = -(0.3 + 0.2 + 0.6 + 0.1);
  const Matrix r = solve_qbd_r(a0, a1, a2);
  const Matrix residual = a0 + r * a1 + r * r * a2;
  EXPECT_LT(residual.max_abs(), 1e-9);
  // Spectral radius below 1 (stability): inf norm of R^32 must be tiny.
  Matrix power = r;
  for (int i = 0; i < 5; ++i) power = power * power;
  EXPECT_LT(power.inf_norm(), 1.0);
}

TEST(QbdTest, ShapeValidation) {
  EXPECT_THROW(solve_qbd_r(Matrix(2, 2), Matrix(3, 3), Matrix(2, 2)),
               dias::precondition_error);
  EXPECT_THROW(solve_qbd_r(Matrix(2, 3), Matrix(2, 3), Matrix(2, 3)),
               dias::precondition_error);
}

TEST(MPh1QueueTest, Mm1ClosedForms) {
  const double lambda = 0.7, mu = 1.0;
  const MPh1Queue q(lambda, PhaseType::exponential(mu));
  ASSERT_TRUE(q.stable());
  EXPECT_NEAR(q.utilization(), 0.7, 1e-12);
  EXPECT_NEAR(q.empty_probability(), 1.0 - 0.7, 1e-9);
  EXPECT_NEAR(q.mean_jobs_in_system(), 0.7 / 0.3, 1e-8);
  EXPECT_NEAR(q.mean_response_time(), 1.0 / (mu - lambda), 1e-8);
  EXPECT_NEAR(q.mean_waiting_time(), 0.7 / 0.3, 1e-8);  // rho/(mu-lambda)
}

TEST(MPh1QueueTest, Mm1GeometricLevels) {
  const double lambda = 0.5, mu = 1.0;
  const MPh1Queue q(lambda, PhaseType::exponential(mu));
  const auto levels = q.level_probabilities(10);
  ASSERT_EQ(levels.size(), 11u);
  for (std::size_t n = 0; n <= 10; ++n) {
    EXPECT_NEAR(levels[n], 0.5 * std::pow(0.5, static_cast<double>(n)), 1e-9)
        << "level " << n;
  }
}

TEST(MPh1QueueTest, MatchesPollaczekKhinchineForErlang) {
  const double lambda = 0.6;
  const auto service = PhaseType::erlang(3, 6.0);  // mean 0.5, scv 1/3
  const MPh1Queue q(lambda, service);
  const double rho = lambda * service.mean();
  const double w = lambda * service.moment(2) / (2.0 * (1.0 - rho));
  EXPECT_NEAR(q.mean_waiting_time(), w, 1e-8);
  EXPECT_NEAR(q.mean_response_time(), w + service.mean(), 1e-8);
}

TEST(MPh1QueueTest, MatchesPollaczekKhinchineForHyperExp) {
  const double lambda = 0.3;
  const auto service = PhaseType::hyper_exponential({0.3, 0.7}, {0.5, 2.0});
  const MPh1Queue q(lambda, service);
  const double rho = lambda * service.mean();
  ASSERT_LT(rho, 1.0);
  const double w = lambda * service.moment(2) / (2.0 * (1.0 - rho));
  EXPECT_NEAR(q.mean_waiting_time(), w, 1e-8);
}

TEST(MPh1QueueTest, UnstableQueueGuards) {
  const MPh1Queue q(2.0, PhaseType::exponential(1.0));
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.mean_jobs_in_system(), dias::precondition_error);
  EXPECT_THROW(q.empty_probability(), dias::precondition_error);
}

TEST(MPh1QueueTest, LevelProbabilitiesSumToOne) {
  const MPh1Queue q(0.5, PhaseType::erlang(2, 4.0));
  const auto levels = q.level_probabilities(200);
  double sum = 0.0;
  for (double p : levels) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST(Mg1WaitingTimeTest, MeanMatchesPollaczekKhinchine) {
  const double lambda = 0.5;
  const auto service = PhaseType::erlang(3, 3.0);
  const auto w = mg1_waiting_time(lambda, service);
  const double rho = lambda * service.mean();
  const double expected = lambda * service.moment(2) / (2.0 * (1.0 - rho));
  EXPECT_NEAR(w.mean(), expected, 1e-9);
}

TEST(Mg1WaitingTimeTest, AtomAtZeroIsOneMinusRho) {
  const double lambda = 0.4;
  const auto service = PhaseType::hyper_exponential({0.3, 0.7}, {0.5, 2.0});
  const auto w = mg1_waiting_time(lambda, service);
  const double rho = lambda * service.mean();
  EXPECT_NEAR(w.point_mass_at_zero(), 1.0 - rho, 1e-9);
  EXPECT_NEAR(w.cdf(0.0), 1.0 - rho, 1e-8);
}

TEST(Mg1WaitingTimeTest, Mm1WaitingIsExponentialMixture) {
  // M/M/1: P(W > t) = rho e^{-(mu - lambda) t}.
  const double lambda = 0.6, mu = 1.0;
  const auto w = mg1_waiting_time(lambda, PhaseType::exponential(mu));
  for (double t : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(w.ccdf(t), 0.6 * std::exp(-(mu - lambda) * t), 1e-8) << t;
  }
}

TEST(Mg1WaitingTimeTest, ResponseAddsService) {
  const double lambda = 0.5;
  const auto service = PhaseType::erlang(2, 2.0);
  const auto t = mg1_response_time(lambda, service);
  const auto w = mg1_waiting_time(lambda, service);
  EXPECT_NEAR(t.mean(), w.mean() + service.mean(), 1e-9);
  // M/PH/1 response mean must also match the QBD machinery.
  const MPh1Queue q(lambda, service);
  EXPECT_NEAR(t.mean(), q.mean_response_time(), 1e-7);
}

TEST(Mg1WaitingTimeTest, RejectsUnstableQueue) {
  EXPECT_THROW(mg1_waiting_time(2.0, PhaseType::exponential(1.0)), dias::precondition_error);
  EXPECT_THROW(mg1_waiting_time(0.0, PhaseType::exponential(1.0)), dias::precondition_error);
}

TEST(MapPh1QueueTest, PoissonSpecialCaseMatchesMPh1) {
  // A MAP with one state and rate lambda is a Poisson process, so the
  // MAP/PH/1 solver must agree with the M/PH/1 one.
  const double lambda = 0.55;
  const auto service = PhaseType::erlang(2, 3.0);
  const auto arrivals = Mmap::marked_poisson({lambda});
  const MapPh1Queue map_queue(arrivals, service);
  const MPh1Queue m_queue(lambda, service);
  ASSERT_TRUE(map_queue.stable());
  EXPECT_NEAR(map_queue.arrival_rate(), lambda, 1e-12);
  EXPECT_NEAR(map_queue.utilization(), m_queue.utilization(), 1e-12);
  EXPECT_NEAR(map_queue.empty_probability(), m_queue.empty_probability(), 1e-8);
  EXPECT_NEAR(map_queue.mean_jobs_in_system(), m_queue.mean_jobs_in_system(), 1e-7);
  EXPECT_NEAR(map_queue.mean_response_time(), m_queue.mean_response_time(), 1e-7);
}

TEST(MapPh1QueueTest, MarkedClassesAggregate) {
  // Two marked Poisson streams aggregate to one Poisson of the total rate.
  const auto service = PhaseType::exponential(1.0);
  const MapPh1Queue split(Mmap::marked_poisson({0.2, 0.3}), service);
  const MapPh1Queue merged(Mmap::marked_poisson({0.5}), service);
  EXPECT_NEAR(split.mean_response_time(), merged.mean_response_time(), 1e-8);
}

TEST(MapPh1QueueTest, BurstyArrivalsWaitLonger) {
  // Same rate, bursty MMPP2 vs Poisson: the analytic queue must show the
  // burstiness penalty.
  const auto service = PhaseType::exponential(1.0);
  const auto bursty = Mmap::mmpp2({{1.2}, {0.0001}}, 0.01, 0.01);
  const auto poisson = Mmap::marked_poisson({bursty.arrival_rate(1)});
  const MapPh1Queue bursty_queue(bursty, service);
  const MapPh1Queue poisson_queue(poisson, service);
  ASSERT_TRUE(bursty_queue.stable());
  EXPECT_GT(bursty_queue.mean_waiting_time(), 2.0 * poisson_queue.mean_waiting_time());
}

TEST(MapPh1QueueTest, MatchesBurstyQueueSimulation) {
  const auto service = PhaseType::erlang(2, 4.0);  // mean 0.5
  const auto arrivals = Mmap::mmpp2({{1.4}, {0.2}}, 0.05, 0.05);  // rate 0.8
  const MapPh1Queue analytic(arrivals, service);
  ASSERT_TRUE(analytic.stable());

  PriorityQueueSimOptions options;
  options.jobs = 300000;
  options.warmup = 30000;
  options.seed = 3;
  const std::vector<PhaseType> services{service};
  const auto sim = simulate_priority_queue(arrivals, services,
                                           SimDiscipline::kNonPreemptive, options);
  EXPECT_NEAR(sim.response[0].mean() / analytic.mean_response_time(), 1.0, 0.05);
}

TEST(MapPh1QueueTest, UnstableGuards) {
  const MapPh1Queue q(Mmap::marked_poisson({2.0}), PhaseType::exponential(1.0));
  EXPECT_FALSE(q.stable());
  EXPECT_THROW(q.mean_jobs_in_system(), dias::precondition_error);
}

class UtilizationSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationSweepTest, LittleLawConsistency) {
  const double rho = GetParam();
  const auto service = PhaseType::erlang(2, 2.0);  // mean 1
  const MPh1Queue q(rho, service);
  ASSERT_TRUE(q.stable());
  // E[N] = lambda E[T] must hold by construction; also E[T] >= E[S].
  EXPECT_NEAR(q.mean_jobs_in_system(), rho * q.mean_response_time(), 1e-9);
  EXPECT_GE(q.mean_response_time(), service.mean() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rhos, UtilizationSweepTest,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace dias::model
