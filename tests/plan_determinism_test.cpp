// Determinism-oracle battery for adaptive execution plans (ISSUE 8).
//
// The oracle: for every plan the AdaptivePlanner can reach
// (reachable_plans()), on every workload shape (uniform / Zipf / tiny /
// huge) and at every worker count (1 / 2 / 8), the reduced relation must
// be *bitwise identical* to the static configuration — keys equal and
// value BIT PATTERNS equal, so even a one-ULP floating-point difference
// fails. Results are compared in canonical form (sorted (key, value-bits)
// pairs) because plans legitimately move entries between partitions;
// what they must never do is change a single result bit.
//
// Two legs pin the two halves of the determinism contract
// (engine/stage_plan.hpp):
//   * uint64 sums (order-insensitive): every knob including the combiner
//     toggle must be identity-preserving;
//   * double sums (order-sensitive): the planner masks combiner/buffer
//     knobs, and the remaining *relocating* knobs (partitions,
//     single-thread route, speculation, spill) must still be bit-exact,
//     because per-key merge order is (src, seq) — a function of the input
//     partitioning only.
//
// This file is the testing convention for future strategy knobs: add the
// knob to StagePlan, extend reachable_plans(), and this battery must pass
// unchanged — if it cannot, the knob needs an order_insensitive-style gate
// in StageTraits (see DESIGN.md §15).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "analytics/page_rank.hpp"
#include "analytics/word_count.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/adaptive_planner.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"
#include "workload/graph_gen.hpp"
#include "workload/text_corpus.hpp"

namespace dias {
namespace {

using engine::Engine;
using engine::ShuffleOptions;
using engine::StageOptions;
using engine::StagePlan;
using engine::StageTraits;
using runtime::AdaptivePlanner;
using runtime::AdaptivePlannerConfig;

constexpr std::size_t kInputPartitions = 6;
constexpr std::size_t kDefaultOut = 6;

// The four workload shapes of the ISSUE acceptance criteria.
struct Workload {
  const char* name;
  std::size_t records;
  std::uint64_t key_space;
  double skew;  // 0 = uniform; higher concentrates mass on low keys
};

const Workload kWorkloads[] = {
    {"uniform", 3000, 257, 0.0},
    {"zipf", 3000, 257, 4.0},
    {"tiny", 48, 13, 0.0},
    {"huge", 20000, 1021, 1.0},
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> make_records(const Workload& w,
                                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(w.records);
  for (std::size_t i = 0; i < w.records; ++i) {
    const double u = rng.uniform();
    const auto key = static_cast<std::uint64_t>(
        static_cast<double>(w.key_space - 1) * std::pow(u, 1.0 + w.skew));
    out.emplace_back(key, rng.uniform_int(1000) + 1);
  }
  return out;
}

// Canonical form: sorted (key, value-bits). Bitwise, not approximate.
template <typename V>
std::vector<std::pair<std::uint64_t, std::uint64_t>> canonical(
    const engine::Dataset<std::pair<std::uint64_t, V>>& ds) {
  static_assert(sizeof(V) == sizeof(std::uint64_t));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::size_t p = 0; p < ds.partitions(); ++p) {
    for (const auto& [k, v] : ds.partition(p)) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      entries.emplace_back(k, bits);
    }
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

AdaptivePlannerConfig battery_config(std::size_t workers) {
  AdaptivePlannerConfig cfg;
  cfg.workers = workers;
  return cfg;
}

// One engine run of the stage under test. `plan == nullptr` is the static
// reference path.
template <typename V, typename Reduce>
std::vector<std::pair<std::uint64_t, std::uint64_t>> run_reduce(
    const std::vector<std::pair<std::uint64_t, V>>& records, std::size_t workers,
    Reduce reduce, const StagePlan* plan, engine::SpillBackend* spill = nullptr) {
  Engine::Options o;
  o.workers = workers;
  o.seed = 99;
  Engine eng(o);
  if (spill != nullptr) eng.set_spill_backend(spill);
  // The input partitioning is FIXED: it determines the (src, seq) merge
  // order, the one thing no plan is allowed to change.
  const auto ds = eng.parallelize(records, kInputPartitions);
  StageOptions opts;
  opts.name = "battery";
  if (plan != nullptr) opts.plan = *plan;
  return canonical(eng.reduce_by_key(ds, reduce, kDefaultOut, opts, {}));
}

TEST(PlanDeterminismTest, UnsignedSumsBitIdenticalForEveryReachablePlan) {
  StageTraits traits;
  traits.name = "battery";
  traits.default_partitions = kDefaultOut;
  traits.order_insensitive = true;
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  std::uint64_t seed = 800;
  for (const Workload& w : kWorkloads) {
    const auto records = make_records(w, ++seed);
    const auto reference = run_reduce(records, 4, sum, nullptr);
    for (const std::size_t workers : {1, 2, 8}) {
      const auto plans = AdaptivePlanner::reachable_plans(battery_config(workers), traits);
      ASSERT_GT(plans.size(), 10u);
      for (const StagePlan& plan : plans) {
        SCOPED_TRACE(testing::Message() << w.name << " workers=" << workers << " plan="
                                        << plan.summary());
        EXPECT_EQ(run_reduce(records, workers, sum, &plan), reference);
      }
    }
  }
}

TEST(PlanDeterminismTest, DoubleSumsBitIdenticalForEveryReachablePlan) {
  // Order-sensitive leg: traits mask the combiner, so reachable plans only
  // relocate work — and relocation must preserve every bit of a
  // floating-point accumulation.
  StageTraits traits;
  traits.name = "battery";
  traits.default_partitions = kDefaultOut;
  traits.order_insensitive = false;
  const auto sum = [](double a, double b) { return a + b; };
  std::uint64_t seed = 900;
  for (const Workload& w : kWorkloads) {
    std::vector<std::pair<std::uint64_t, double>> records;
    for (const auto& [k, v] : make_records(w, ++seed)) {
      records.emplace_back(k, static_cast<double>(v) * 1.0e-3 + 0.1);
    }
    const auto reference = run_reduce(records, 4, sum, nullptr);
    for (const std::size_t workers : {1, 2, 8}) {
      const auto plans = AdaptivePlanner::reachable_plans(battery_config(workers), traits);
      for (const StagePlan& plan : plans) {
        SCOPED_TRACE(testing::Message() << w.name << " workers=" << workers << " plan="
                                        << plan.summary());
        // No reachable plan may toggle the combiner on this leg.
        ASSERT_FALSE(plan.combine.has_value());
        ASSERT_FALSE(plan.target_buffer_bytes.has_value());
        EXPECT_EQ(run_reduce(records, workers, sum, &plan), reference);
      }
    }
  }
}

// Spill-hint plans run against a real BlockStore backend and must still be
// byte-identical to the in-memory static path (spilling relocates bytes,
// never reorders them — DESIGN.md §13).
class PlanDeterminismSpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("dias_plan_spill_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }
  std::filesystem::path root_;
};

TEST_F(PlanDeterminismSpillTest, SpillHintPlansMatchInMemoryReference) {
  StageTraits traits;
  traits.name = "battery";
  traits.default_partitions = kDefaultOut;
  traits.order_insensitive = true;
  AdaptivePlannerConfig cfg = battery_config(4);
  cfg.spill_budget_bytes = 16 * 1024;  // small enough that segments spill
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  const Workload w{"huge", 20000, 1021, 1.0};
  const auto records = make_records(w, 4242);
  const auto reference = run_reduce(records, 4, sum, nullptr);

  storage::BlockStoreOptions store_opts;
  store_opts.root = root_;
  store_opts.block_bytes = 4096;
  storage::BlockStore store(store_opts);

  std::size_t spill_plans = 0;
  for (const StagePlan& plan : AdaptivePlanner::reachable_plans(cfg, traits)) {
    if (!plan.spill_budget_bytes.has_value()) continue;
    ++spill_plans;
    SCOPED_TRACE(testing::Message() << "plan=" << plan.summary());
    storage::BlockStoreSpill spill(store, "plan" + std::to_string(spill_plans));
    EXPECT_EQ(run_reduce(records, 4, sum, &plan, &spill), reference);
  }
  EXPECT_GT(spill_plans, 5u);  // the hint dimension really was swept
}

// A spill hint on an engine with NO backend must stay advisory: same
// bytes, no config_error (the guard in Engine::apply_stage_plan).
TEST(PlanDeterminismTest, SpillHintWithoutBackendIsAdvisory) {
  const Workload w{"uniform", 3000, 257, 0.0};
  const auto records = make_records(w, 321);
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  const auto reference = run_reduce(records, 4, sum, nullptr);
  StagePlan plan;
  plan.spill_budget_bytes = 4096;
  EXPECT_EQ(run_reduce(records, 4, sum, &plan), reference);
}

// End-to-end: word count driven by a LIVE AdaptivePlanner reading the
// engine's own registry converges to non-identity plans and still produces
// exactly the static result, round after round.
TEST(PlanDeterminismTest, WordCountWithLivePlannerMatchesStaticExactly) {
  workload::TextCorpusParams params;
  params.posts = 300;
  params.mean_words_per_post = 30;
  params.vocabulary = 500;
  params.seed = 5;
  const auto corpus = workload::generate_text_corpus("battery", params);

  Engine::Options o;
  o.workers = 4;
  o.seed = 7;
  Engine static_eng(o);
  const auto static_result = analytics::word_count(
      static_eng, static_eng.parallelize(corpus.rows, kInputPartitions), 8);

  Engine adaptive_eng(o);
  obs::Registry registry;
  obs::Tracer tracer;
  adaptive_eng.attach_observability(&registry, &tracer);
  AdaptivePlannerConfig cfg;
  cfg.workers = 4;
  cfg.min_hold_decisions = 1;
  AdaptivePlanner planner(&registry, cfg, &registry, &tracer);

  const auto rows = adaptive_eng.parallelize(corpus.rows, kInputPartitions);
  bool saw_non_identity = false;
  for (int round = 0; round < 4; ++round) {
    const auto adaptive_result =
        analytics::word_count(adaptive_eng, rows, 8, -1.0, {}, &planner);
    EXPECT_EQ(adaptive_result.counts, static_result.counts) << "round " << round;
    const obs::Gauge* single = registry.find_gauge("planner.wordcount.single_thread");
    const obs::Gauge* parts = registry.find_gauge("planner.wordcount.partitions");
    const obs::Gauge* combine = registry.find_gauge("planner.wordcount.combine");
    ASSERT_NE(single, nullptr);
    ASSERT_NE(parts, nullptr);
    ASSERT_NE(combine, nullptr);
    if (single->value() == 1.0 || parts->value() != 8.0 || combine->value() != -1.0) {
      saw_non_identity = true;
    }
  }
  // The planner really adapted (it sees strong key collapse at minimum).
  EXPECT_TRUE(saw_non_identity);
  EXPECT_GE(registry.counter("planner.decisions").value(), 8u);  // 2 stages x 4 rounds
  adaptive_eng.attach_observability(nullptr, nullptr);
}

// PageRank's rank vector is floating point: with a live planner adapting
// the per-iteration sum shuffles, every rank must still match the static
// run BIT FOR BIT (the adjacency shuffle stays static by construction).
TEST(PlanDeterminismTest, PageRankWithLivePlannerIsBitwiseIdentical) {
  workload::GraphParams gp;
  gp.scale = 9;
  gp.edges = 4096;
  gp.seed = 11;
  const auto edges = workload::generate_rmat_graph(gp);

  const auto run = [&](engine::PlanSource* planner, obs::Registry* registry,
                       obs::Tracer* tracer) {
    Engine::Options o;
    o.workers = 4;
    o.seed = 13;
    Engine eng(o);
    if (registry != nullptr) eng.attach_observability(registry, tracer);
    analytics::PageRankOptions opts;
    opts.iterations = 5;
    opts.partitions = 8;
    opts.planner = planner;
    const auto result = eng.parallelize(edges, kInputPartitions);
    const auto pr = analytics::page_rank(eng, result, opts);
    if (registry != nullptr) eng.attach_observability(nullptr, nullptr);
    return pr.ranks;
  };

  const auto static_ranks = run(nullptr, nullptr, nullptr);
  obs::Registry registry;
  obs::Tracer tracer;
  AdaptivePlannerConfig cfg;
  cfg.workers = 4;
  cfg.min_hold_decisions = 1;
  AdaptivePlanner planner(&registry, cfg, &registry, &tracer);
  const auto adaptive_ranks = run(&planner, &registry, &tracer);

  ASSERT_EQ(adaptive_ranks.size(), static_ranks.size());
  for (const auto& [vertex, rank] : static_ranks) {
    const auto it = adaptive_ranks.find(vertex);
    ASSERT_NE(it, adaptive_ranks.end()) << "vertex " << vertex;
    std::uint64_t expect_bits = 0;
    std::uint64_t got_bits = 0;
    std::memcpy(&expect_bits, &rank, sizeof(expect_bits));
    std::memcpy(&got_bits, &it->second, sizeof(got_bits));
    EXPECT_EQ(got_bits, expect_bits) << "vertex " << vertex;
  }
  EXPECT_GE(registry.counter("planner.decisions").value(), 5u);  // one per iteration
}

}  // namespace
}  // namespace dias
