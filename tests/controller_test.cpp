#include "core/controller.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace dias::core {
namespace {

cluster::JobSpec job(std::size_t priority, double seconds) {
  cluster::JobSpec spec;
  spec.priority = priority;
  spec.stages = {{cluster::StageKind::kMap, 1, seconds, 0.0}};
  return spec;
}

TEST(ControllerTest, PolicyNamesAndTraits) {
  EXPECT_STREQ(to_string(Policy::kPreemptive), "P");
  EXPECT_STREQ(to_string(Policy::kNonPreemptive), "NP");
  EXPECT_STREQ(to_string(Policy::kDifferentialApprox), "DA");
  EXPECT_STREQ(to_string(Policy::kNonPreemptiveSprint), "NPS");
  EXPECT_STREQ(to_string(Policy::kDias), "DiAS");

  EXPECT_FALSE(policy_uses_dropping(Policy::kPreemptive));
  EXPECT_FALSE(policy_uses_dropping(Policy::kNonPreemptive));
  EXPECT_TRUE(policy_uses_dropping(Policy::kDifferentialApprox));
  EXPECT_FALSE(policy_uses_dropping(Policy::kNonPreemptiveSprint));
  EXPECT_TRUE(policy_uses_dropping(Policy::kDias));

  EXPECT_FALSE(policy_uses_sprinting(Policy::kPreemptive));
  EXPECT_FALSE(policy_uses_sprinting(Policy::kDifferentialApprox));
  EXPECT_TRUE(policy_uses_sprinting(Policy::kNonPreemptiveSprint));
  EXPECT_TRUE(policy_uses_sprinting(Policy::kDias));
}

TEST(ControllerTest, PreemptivePolicyEvicts) {
  ExperimentConfig config;
  config.policy = Policy::kPreemptive;
  config.slots = 1;
  config.task_time_family = cluster::TaskTimeFamily::kDeterministic;
  config.warmup_jobs = 0;
  auto result = run_experiment(config, {{0.0, job(0, 100.0)}, {10.0, job(1, 5.0)}});
  EXPECT_EQ(result.total_evictions, 1u);
}

TEST(ControllerTest, DaPolicyDropsOnlyWithTheta) {
  ExperimentConfig config;
  config.policy = Policy::kDifferentialApprox;
  config.slots = 2;
  config.theta = {0.5};
  config.task_time_family = cluster::TaskTimeFamily::kDeterministic;
  config.warmup_jobs = 0;
  cluster::JobSpec spec;
  spec.priority = 0;
  spec.stages = {{cluster::StageKind::kMap, 4, 3.0, 0.0}};
  auto result = run_experiment(config, {{0.0, spec}});
  // 4 -> 2 tasks on 2 slots -> one 3 s wave.
  EXPECT_NEAR(result.per_class[0].execution.mean(), 3.0, 1e-9);

  // NP ignores theta.
  config.policy = Policy::kNonPreemptive;
  result = run_experiment(config, {{0.0, spec}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 6.0, 1e-9);
}

TEST(ControllerTest, SprintPoliciesEnableSprinter) {
  ExperimentConfig config;
  config.policy = Policy::kNonPreemptiveSprint;
  config.slots = 1;
  config.task_time_family = cluster::TaskTimeFamily::kDeterministic;
  config.warmup_jobs = 0;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {0.0};
  auto result = run_experiment(config, {{0.0, job(0, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 5.0, 1e-9);

  // DA must not sprint even with the same sprint settings.
  config.policy = Policy::kDifferentialApprox;
  config.theta = {0.0};
  result = run_experiment(config, {{0.0, job(0, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 10.0, 1e-9);
}

TEST(ControllerTest, RelativeDifference) {
  cluster::ClassMetrics base, other;
  for (double x : {10.0, 10.0, 10.0, 10.0}) base.response.add(x);
  for (double x : {5.0, 5.0, 5.0, 5.0}) other.response.add(x);
  const auto delta = relative_difference(base, other);
  EXPECT_NEAR(delta.mean_percent, -50.0, 1e-9);
  EXPECT_NEAR(delta.tail_percent, -50.0, 1e-9);
  cluster::ClassMetrics empty;
  EXPECT_THROW(relative_difference(base, empty), dias::precondition_error);
}

}  // namespace
}  // namespace dias::core
