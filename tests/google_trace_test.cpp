#include "workload/google_trace.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace dias::workload {
namespace {

TEST(GoogleTraceTest, BuildsTwelveClasses) {
  const auto classes = google_trace_classes({});
  ASSERT_EQ(classes.size(), 12u);
  for (const auto& c : classes) {
    EXPECT_GT(c.arrival_rate, 0.0);
    EXPECT_GT(c.mean_size_mb, 0.0);
  }
}

TEST(GoogleTraceTest, DominantTrioCarriesConfiguredShare) {
  GoogleTraceParams params;
  params.dominant_share = 0.89;
  const auto classes = google_trace_classes(params);
  double total = 0.0;
  for (const auto& c : classes) total += c.arrival_rate;
  const std::size_t mid = 12 / 3, top = 12 - 3;
  const double trio =
      classes[0].arrival_rate + classes[mid].arrival_rate + classes[top].arrival_rate;
  EXPECT_NEAR(trio / total, 0.89, 1e-9);
  // Shares must sum to the base rate.
  EXPECT_NEAR(total, params.base_arrival_rate, 1e-9);
}

TEST(GoogleTraceTest, SizesDecreaseWithPriority) {
  const auto classes = google_trace_classes({});
  for (std::size_t p = 1; p < classes.size(); ++p) {
    EXPECT_LE(classes[p].mean_size_mb, classes[p - 1].mean_size_mb + 1e-9);
  }
  EXPECT_NEAR(classes.front().mean_size_mb, 1117.0, 1e-9);
  EXPECT_NEAR(classes.back().mean_size_mb, 473.0, 1e-9);
}

TEST(GoogleTraceTest, TraceGenerationWorksEndToEnd) {
  auto classes = google_trace_classes({});
  TraceGenerator gen(3);
  const auto trace = gen.text_trace(classes, 5000);
  ASSERT_EQ(trace.size(), 5000u);
  std::vector<std::size_t> counts(12, 0);
  for (const auto& e : trace) {
    ASSERT_LT(e.spec.priority, 12u);
    ++counts[e.spec.priority];
  }
  // The three dominant classes must dominate empirically too.
  const std::size_t trio = counts[0] + counts[4] + counts[9];
  EXPECT_GT(static_cast<double>(trio) / 5000.0, 0.8);
}

TEST(GoogleTraceTest, Validation) {
  GoogleTraceParams params;
  params.priorities = 2;
  EXPECT_THROW(google_trace_classes(params), dias::precondition_error);
  params = {};
  params.dominant_share = 1.5;
  EXPECT_THROW(google_trace_classes(params), dias::precondition_error);
}

TEST(DifferentialThetaTest, ShapeAndBounds) {
  const auto theta = differential_theta(12, 3, 0.4);
  ASSERT_EQ(theta.size(), 12u);
  // Top three classes exact.
  EXPECT_DOUBLE_EQ(theta[11], 0.0);
  EXPECT_DOUBLE_EQ(theta[10], 0.0);
  EXPECT_DOUBLE_EQ(theta[9], 0.0);
  // Priority 0 gets the maximum; monotone non-increasing with priority.
  EXPECT_DOUBLE_EQ(theta[0], 0.4);
  for (std::size_t p = 1; p < 12; ++p) EXPECT_LE(theta[p], theta[p - 1] + 1e-12);
}

TEST(DifferentialThetaTest, AllExactDegenerate) {
  const auto theta = differential_theta(5, 5, 0.4);
  for (double t : theta) EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(DifferentialThetaTest, Validation) {
  EXPECT_THROW(differential_theta(3, 4, 0.2), dias::precondition_error);
  EXPECT_THROW(differential_theta(3, 1, 1.0), dias::precondition_error);
  EXPECT_THROW(differential_theta(0, 0, 0.2), dias::precondition_error);
}

}  // namespace
}  // namespace dias::workload
