#include "model/mmap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dias::model {
namespace {

TEST(MmapTest, MarkedPoissonRates) {
  const auto mmap = Mmap::marked_poisson({0.5, 1.5});
  EXPECT_EQ(mmap.classes(), 2u);
  EXPECT_EQ(mmap.states(), 1u);
  EXPECT_NEAR(mmap.arrival_rate(1), 0.5, 1e-12);
  EXPECT_NEAR(mmap.arrival_rate(2), 1.5, 1e-12);
  EXPECT_NEAR(mmap.total_arrival_rate(), 2.0, 1e-12);
}

TEST(MmapTest, GeneratorRowsSumToZero) {
  const auto mmap = Mmap::marked_poisson({1.0, 2.0, 3.0});
  const Matrix d = mmap.generator();
  EXPECT_NEAR(d.sum(), 0.0, 1e-12);
}

TEST(MmapTest, ValidationCatchesBadBlocks) {
  // Row sums of D0 + D1 must be zero.
  EXPECT_THROW(Mmap(Matrix{{-1.0}}, {Matrix{{2.0}}}), precondition_error);
  // Negative arrival rate block.
  EXPECT_THROW(Mmap(Matrix{{-1.0}}, {Matrix{{-1.0}} * 1.0}), precondition_error);
  // Shape mismatch.
  EXPECT_THROW(Mmap(Matrix{{-1.0}}, {Matrix(2, 2)}), precondition_error);
}

TEST(MmapTest, ClassIndexOutOfRangeThrows) {
  const auto mmap = Mmap::marked_poisson({1.0});
  EXPECT_THROW(mmap.dk(0), precondition_error);
  EXPECT_THROW(mmap.dk(2), precondition_error);
}

TEST(MmapTest, SamplerReproducesPoissonRates) {
  const auto mmap = Mmap::marked_poisson({0.3, 0.7});
  auto sampler = mmap.sampler(Rng(42));
  double total_time = 0.0;
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto a = sampler.next();
    total_time += a.inter_arrival;
    ASSERT_GE(a.job_class, 1u);
    ASSERT_LE(a.job_class, 2u);
    ++counts[a.job_class];
  }
  EXPECT_NEAR(n / total_time, 1.0, 0.02);                    // total rate
  EXPECT_NEAR(counts[1] / total_time, 0.3, 0.01);            // class 1
  EXPECT_NEAR(counts[2] / total_time, 0.7, 0.01);            // class 2
}

TEST(MmapTest, SamplerInterArrivalIsExponential) {
  const auto mmap = Mmap::marked_poisson({2.0});
  auto sampler = mmap.sampler(Rng(7));
  dias::Welford acc;
  for (int i = 0; i < 100000; ++i) acc.add(sampler.next().inter_arrival);
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 0.25, 0.01);  // scv 1
}

TEST(MmapTest, Mmpp2IsValidAndBursty) {
  // State 0: high rate, state 1: low rate -> inter-arrivals have scv > 1.
  const auto mmap = Mmap::mmpp2({{4.0}, {0.2}}, 0.1, 0.1);
  EXPECT_EQ(mmap.states(), 2u);
  EXPECT_EQ(mmap.classes(), 1u);
  EXPECT_NEAR(mmap.generator().sum(), 0.0, 1e-12);
  // Stationary phase distribution is (0.5, 0.5) by symmetry of switching.
  const Matrix pi = mmap.stationary();
  EXPECT_NEAR(pi(0, 0), 0.5, 1e-9);
  // Rate = 0.5*4 + 0.5*0.2.
  EXPECT_NEAR(mmap.arrival_rate(1), 2.1, 1e-9);

  auto sampler = mmap.sampler(Rng(21));
  dias::Welford acc;
  for (int i = 0; i < 200000; ++i) acc.add(sampler.next().inter_arrival);
  const double scv = acc.variance() / (acc.mean() * acc.mean());
  EXPECT_GT(scv, 1.3) << "MMPP inter-arrivals should be bursty";
}

TEST(MmapTest, Mmpp2TwoClasses) {
  const auto mmap = Mmap::mmpp2({{1.0, 2.0}, {3.0, 0.5}}, 0.5, 1.5);
  // pi = (r10, r01)/(r01+r10) = (0.75, 0.25)
  EXPECT_NEAR(mmap.arrival_rate(1), 0.75 * 1.0 + 0.25 * 3.0, 1e-9);
  EXPECT_NEAR(mmap.arrival_rate(2), 0.75 * 2.0 + 0.25 * 0.5, 1e-9);
}

}  // namespace
}  // namespace dias::model
