#include "model/mg1_priority.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dias::model {
namespace {

// Single class M/M/1: W (FCFS) = rho / (mu - lambda), T = 1/(mu - lambda).
TEST(Mg1PriorityTest, SingleClassMm1) {
  const double lambda = 0.6, mu = 1.0;
  const auto service = PhaseType::exponential(mu);
  const std::vector<PriorityClassInput> classes{make_class_input(lambda, service)};
  for (auto results : {Mg1PriorityQueue::non_preemptive(classes),
                       Mg1PriorityQueue::preemptive_resume(classes)}) {
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].stable);
    EXPECT_NEAR(results[0].utilization, 0.6, 1e-12);
    EXPECT_NEAR(results[0].mean_waiting, 0.6 / (mu - lambda), 1e-9);
    EXPECT_NEAR(results[0].mean_response, 1.0 / (mu - lambda), 1e-9);
  }
}

// Single class M/G/1: Pollaczek-Khinchine with an Erlang-2 service.
TEST(Mg1PriorityTest, SingleClassPollaczekKhinchine) {
  const double lambda = 0.5;
  const auto service = PhaseType::erlang(2, 4.0);  // mean 0.5, E[S^2] = 6/16
  const std::vector<PriorityClassInput> classes{make_class_input(lambda, service)};
  const auto results = Mg1PriorityQueue::non_preemptive(classes);
  const double rho = lambda * 0.5;
  const double w = lambda * service.moment(2) / (2.0 * (1.0 - rho));
  EXPECT_NEAR(results[0].mean_waiting, w, 1e-9);
}

// Two classes, exponential service: textbook non-preemptive priority means.
TEST(Mg1PriorityTest, TwoClassNonPreemptiveCobham) {
  // Class order: index 1 is the HIGH priority (paper convention).
  const double lambda_low = 0.3, lambda_high = 0.2;
  const double mu_low = 1.0, mu_high = 2.0;
  const std::vector<PriorityClassInput> classes{
      make_class_input(lambda_low, PhaseType::exponential(mu_low)),
      make_class_input(lambda_high, PhaseType::exponential(mu_high)),
  };
  const auto results = Mg1PriorityQueue::non_preemptive(classes);
  const double rho_low = 0.3, rho_high = 0.1;
  const double w0 = lambda_low * 2.0 / (mu_low * mu_low) / 2.0 +
                    lambda_high * 2.0 / (mu_high * mu_high) / 2.0;
  const double w_high = w0 / (1.0 - rho_high);
  const double w_low = w0 / ((1.0 - rho_high) * (1.0 - rho_high - rho_low));
  EXPECT_NEAR(results[1].mean_waiting, w_high, 1e-9);
  EXPECT_NEAR(results[0].mean_waiting, w_low, 1e-9);
  EXPECT_GT(results[0].mean_waiting, results[1].mean_waiting);
}

TEST(Mg1PriorityTest, TwoClassPreemptiveResume) {
  const double lambda_low = 0.3, lambda_high = 0.2;
  const double mu_low = 1.0, mu_high = 2.0;
  const std::vector<PriorityClassInput> classes{
      make_class_input(lambda_low, PhaseType::exponential(mu_low)),
      make_class_input(lambda_high, PhaseType::exponential(mu_high)),
  };
  const auto results = Mg1PriorityQueue::preemptive_resume(classes);
  // High class sees a pure M/M/1.
  EXPECT_NEAR(results[1].mean_response, 1.0 / (mu_high - lambda_high), 1e-9);
  // Low class: T = E[S]/(1-rho_h) + (sum_{j<=k} lambda_j E[S_j^2]/2)/((1-rho_h)(1-rho_h-rho_l)).
  const double rho_h = 0.1, rho_l = 0.3;
  const double w0_all = lambda_low * 2.0 / (mu_low * mu_low) / 2.0 +
                        lambda_high * 2.0 / (mu_high * mu_high) / 2.0;
  const double t_low = 1.0 / mu_low / (1.0 - rho_h) +
                       w0_all / ((1.0 - rho_h) * (1.0 - rho_h - rho_l));
  EXPECT_NEAR(results[0].mean_response, t_low, 1e-9);
}

TEST(Mg1PriorityTest, PreemptionHelpsHighHurtsLow) {
  const std::vector<PriorityClassInput> classes{
      make_class_input(0.4, PhaseType::exponential(1.0)),
      make_class_input(0.2, PhaseType::exponential(1.0)),
  };
  const auto np = Mg1PriorityQueue::non_preemptive(classes);
  const auto pr = Mg1PriorityQueue::preemptive_resume(classes);
  EXPECT_LT(pr[1].mean_response, np[1].mean_response);  // high prefers P
  EXPECT_GE(pr[0].mean_response, np[0].mean_response - 1e-9);  // low prefers NP
}

TEST(Mg1PriorityTest, UnstableClassFlagged) {
  // Total load 1.2: the low class must be unstable, the high class stable.
  const std::vector<PriorityClassInput> classes{
      make_class_input(0.7, PhaseType::exponential(1.0)),
      make_class_input(0.5, PhaseType::exponential(1.0)),
  };
  const auto results = Mg1PriorityQueue::non_preemptive(classes);
  EXPECT_FALSE(results[0].stable);
  EXPECT_TRUE(std::isinf(results[0].mean_response));
  EXPECT_TRUE(results[1].stable);
}

TEST(Mg1PriorityTest, InputValidation) {
  std::vector<PriorityClassInput> classes{{-0.1, 1.0, 2.0}};
  EXPECT_THROW(Mg1PriorityQueue::non_preemptive(classes), dias::precondition_error);
  classes = {{0.1, 0.0, 0.0}};
  EXPECT_THROW(Mg1PriorityQueue::non_preemptive(classes), dias::precondition_error);
  classes = {{0.1, 2.0, 1.0}};  // E[S^2] < E[S]^2
  EXPECT_THROW(Mg1PriorityQueue::non_preemptive(classes), dias::precondition_error);
  EXPECT_THROW(Mg1PriorityQueue::non_preemptive(std::vector<PriorityClassInput>{}),
               dias::precondition_error);
}

TEST(RepeatCompletionTest, NoInterruptionsGivesServiceMean) {
  const auto s = PhaseType::erlang(3, 2.0);
  const auto c = Mg1PriorityQueue::repeat_completion_mean(s, 0.0, 5.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(*c, s.mean(), 1e-12);
}

TEST(RepeatCompletionTest, ExponentialClosedForm) {
  // S ~ Exp(mu), interrupts at rate a < mu: E[e^{aS}] = mu/(mu-a).
  const double mu = 2.0, a = 0.5, busy = 1.5;
  const auto s = PhaseType::exponential(mu);
  const auto c = Mg1PriorityQueue::repeat_completion_mean(s, a, busy);
  ASSERT_TRUE(c.has_value());
  const double restarts = mu / (mu - a) - 1.0;
  EXPECT_NEAR(*c, restarts / a + restarts * busy, 1e-9);
}

TEST(RepeatCompletionTest, DivergesAtHighInterruptRate) {
  const auto s = PhaseType::exponential(1.0);
  EXPECT_FALSE(Mg1PriorityQueue::repeat_completion_mean(s, 1.5, 0.0).has_value());
}

TEST(PreemptiveRepeatTest, TopClassUnaffected) {
  std::vector<Mg1PriorityQueue::RepeatClassInput> classes;
  classes.push_back({0.3, PhaseType::exponential(1.0)});
  classes.push_back({0.2, PhaseType::exponential(2.0)});
  const auto results = Mg1PriorityQueue::preemptive_repeat(classes);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].stable);
  // The top class is never evicted: its completion time is its service.
  EXPECT_NEAR(results[1].utilization, 0.2 * 0.5, 1e-12);
}

TEST(PreemptiveRepeatTest, RepeatCostsMoreThanResume) {
  std::vector<Mg1PriorityQueue::RepeatClassInput> repeat_classes;
  repeat_classes.push_back({0.3, PhaseType::exponential(1.0)});
  repeat_classes.push_back({0.2, PhaseType::exponential(2.0)});
  const std::vector<PriorityClassInput> resume_classes{
      make_class_input(0.3, PhaseType::exponential(1.0)),
      make_class_input(0.2, PhaseType::exponential(2.0)),
  };
  const auto repeat = Mg1PriorityQueue::preemptive_repeat(repeat_classes);
  const auto resume = Mg1PriorityQueue::preemptive_resume(resume_classes);
  ASSERT_TRUE(repeat[0].stable);
  // Re-executing from scratch can only increase the low class's response.
  EXPECT_GT(repeat[0].mean_response, resume[0].mean_response - 1e-9);
}

TEST(PreemptiveRepeatTest, InstabilityDetected) {
  // Low class with long jobs under heavy high-priority traffic: the
  // restart transform diverges (Jelenkovic's instability).
  std::vector<Mg1PriorityQueue::RepeatClassInput> classes;
  classes.push_back({0.01, PhaseType::exponential(0.2)});  // mean 5s
  classes.push_back({0.5, PhaseType::exponential(2.0)});   // interrupt rate 0.5 > 0.2
  const auto results = Mg1PriorityQueue::preemptive_repeat(classes);
  EXPECT_FALSE(results[0].stable);
  EXPECT_TRUE(results[1].stable);
}

class LoadSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweepTest, ConservationLawHolds) {
  // Kleinrock's conservation law for non-preemptive M/G/1 priorities:
  // sum_k rho_k W_k = rho * W_fcfs where W_fcfs = W0 / (1 - rho).
  const double rho_total = GetParam();
  const double lambda_low = rho_total * 0.6, lambda_high = rho_total * 0.4;
  const std::vector<PriorityClassInput> classes{
      make_class_input(lambda_low, PhaseType::exponential(1.0)),
      make_class_input(lambda_high, PhaseType::exponential(1.0)),
  };
  const auto results = Mg1PriorityQueue::non_preemptive(classes);
  const double w0 = lambda_low + lambda_high;  // lambda E[S^2]/2 = lambda*2/2
  const double lhs = lambda_low * 1.0 * results[0].mean_waiting +
                     lambda_high * 1.0 * results[1].mean_waiting;
  const double rhs = rho_total * w0 / (1.0 - rho_total);
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, rhs));
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweepTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace dias::model
