#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dias {
namespace {

TEST(WelfordTest, MeanAndVariance) {
  Welford acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
  EXPECT_NEAR(acc.sample_variance(), 32.0 / 7.0, 1e-12);
}

TEST(WelfordTest, MinMaxAndSecondMoment) {
  Welford acc;
  acc.add(1.0);
  acc.add(-3.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 2.0);
  EXPECT_NEAR(acc.second_moment(), (1.0 + 9.0 + 4.0) / 3.0, 1e-12);
}

TEST(WelfordTest, MergeEqualsSequential) {
  Rng rng(1);
  Welford all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmpty) {
  Welford a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(WelfordTest, EmptyAccumulatorGuards) {
  Welford acc;
  EXPECT_THROW(acc.min(), precondition_error);
  EXPECT_THROW(acc.max(), precondition_error);
  EXPECT_THROW(acc.second_moment(), precondition_error);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(SampleSetTest, ExactQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.p50(), 50.5, 1e-12);
  EXPECT_NEAR(s.p95(), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, QuantileAfterMoreAdds) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
  s.add(20.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 15.0);
}

TEST(SampleSetTest, VarianceMatchesWelford) {
  Rng rng(2);
  SampleSet s;
  Welford w;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(0.5);
    s.add(x);
    w.add(x);
  }
  EXPECT_NEAR(s.variance(), w.variance(), 1e-9);
  EXPECT_NEAR(s.mean(), w.mean(), 1e-12);
}

TEST(SampleSetTest, EmptyGuards) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), precondition_error);
  EXPECT_THROW(s.quantile(0.5), precondition_error);
}

TEST(SampleSetTest, ClearResets) {
  SampleSet s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(HistogramTest, BinPlacementAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(HistogramTest, QuantileApproximatesSample) {
  Histogram h(0.0, 1.0, 1000);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.01);
}

TEST(HistogramTest, Preconditions) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), precondition_error);  // empty
  EXPECT_THROW(h.bin_lo(4), precondition_error);
}

// Regression: the constructor used to derive bin width in the member-init
// list, dividing by `bins` *before* the precondition guards ran. The guards
// must fire first — no arithmetic on unvalidated arguments — and every
// invalid shape must surface as precondition_error, never as a histogram
// with a NaN/inf width.
TEST(HistogramTest, ConstructorValidatesBeforeDerivingWidth) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);    // bins == 0
  EXPECT_THROW(Histogram(0.0, 0.0, 0), precondition_error);    // both invalid
  EXPECT_THROW(Histogram(5.0, 2.0, 8), precondition_error);    // hi < lo
  EXPECT_THROW(Histogram(-1.0, -1.0, 8), precondition_error);  // empty range
  // A valid construction right after the throwing ones still works.
  Histogram h(0.0, 8.0, 8);
  h.add(3.5);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

// Regression: merging an accumulator into itself must behave like merging
// a copy — the sample doubles (count, m2, second moment) while mean, min
// and max are unchanged. The old code read `other`'s fields while mutating
// the same object through `this`.
TEST(WelfordTest, SelfMergeDoublesTheSample) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  Welford copy = w;
  Welford expected = w;
  expected.merge(copy);

  w.merge(w);
  EXPECT_EQ(w.count(), 16u);
  EXPECT_EQ(w.count(), expected.count());
  EXPECT_DOUBLE_EQ(w.mean(), expected.mean());
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), expected.variance());
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // population variance is unchanged
  EXPECT_DOUBLE_EQ(w.min(), expected.min());
  EXPECT_DOUBLE_EQ(w.max(), expected.max());
  EXPECT_NEAR(w.second_moment(), expected.second_moment(), 1e-12);
}

TEST(WelfordTest, SelfMergeOfEmptyIsEmpty) {
  Welford w;
  w.merge(w);
  EXPECT_EQ(w.count(), 0u);
}

TEST(MapeTest, ExactMatchIsZero) {
  const std::vector<double> ref{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_absolute_percent_error(ref, ref), 0.0);
}

TEST(MapeTest, KnownValue) {
  const std::vector<double> ref{10.0, 20.0};
  const std::vector<double> est{9.0, 22.0};
  // (10% + 10%) / 2 = 10%
  EXPECT_NEAR(mean_absolute_percent_error(ref, est), 10.0, 1e-12);
}

TEST(MapeTest, SkipsZeroReference) {
  const std::vector<double> ref{0.0, 10.0};
  const std::vector<double> est{5.0, 5.0};
  EXPECT_NEAR(mean_absolute_percent_error(ref, est), 50.0, 1e-12);
}

TEST(MapeTest, Preconditions) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(mean_absolute_percent_error(a, b), precondition_error);
  const std::vector<double> zeros{0.0};
  EXPECT_THROW(mean_absolute_percent_error(zeros, zeros), precondition_error);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(relative_error_percent(100.0, 90.0), 10.0);
  EXPECT_DOUBLE_EQ(relative_error_percent(-50.0, -55.0), 10.0);
  EXPECT_THROW(relative_error_percent(0.0, 1.0), precondition_error);
}

}  // namespace
}  // namespace dias
