// Seeded randomized property tests of the dispatcher's scheduling contract:
// for any batch of jobs queued while the runner is busy, execution order is
// exactly "highest priority first, FCFS within a class" (non-preemptive),
// and every JobRecord's timestamps are monotone — including zero-duration
// jobs, whose start and completion may coincide.
#include "core/dispatcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace dias::core {
namespace {

void busy_wait_us(int us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(DispatcherPropertyTest, PriorityOrderAndMonotonicTimestamps) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const std::size_t classes = 2 + rng.uniform_int(3);  // 2..4
    DiasDispatcher dispatcher(std::vector<double>(classes, 0.0));

    // Plug the single runner so the randomized batch queues up behind it;
    // arrival order is then exactly submission order.
    std::atomic<bool> plug_running{false};
    std::atomic<bool> gate{false};
    dispatcher.submit(0, [&](double) {
      plug_running = true;
      while (!gate) std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
    while (!plug_running) std::this_thread::yield();

    const std::size_t jobs = 20 + rng.uniform_int(30);
    std::vector<std::size_t> priorities(jobs);
    std::vector<std::size_t> executed;  // appended by the (serialized) runner
    executed.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
      priorities[i] = rng.uniform_int(classes);
      const bool zero_duration = rng.bernoulli(0.4);
      const int work_us = zero_duration ? 0 : static_cast<int>(rng.uniform_int(800));
      dispatcher.submit(priorities[i], [&executed, i, work_us](double) {
        executed.push_back(i);
        if (work_us > 0) busy_wait_us(work_us);
      });
    }

    // Property: execution order == stable sort by (priority desc, arrival).
    std::vector<std::size_t> expected(jobs);
    std::iota(expected.begin(), expected.end(), 0);
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return priorities[a] > priorities[b];
                     });

    gate = true;
    const auto records = dispatcher.drain();  // synchronizes `executed`
    EXPECT_EQ(executed, expected) << "seed " << seed;

    // Property: per-record monotonicity (zero-duration jobs included) and,
    // since the runner is non-preemptive and records arrive in completion
    // order, back-to-back jobs never overlap.
    ASSERT_EQ(records.size(), jobs + 1) << "seed " << seed;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& r = records[i];
      EXPECT_LE(r.arrival_s, r.start_s) << "seed " << seed << " record " << i;
      EXPECT_LE(r.start_s, r.completion_s) << "seed " << seed << " record " << i;
      EXPECT_GE(r.response_s(), r.execution_s()) << "seed " << seed;
      if (i > 0) {
        EXPECT_GE(r.start_s, records[i - 1].completion_s)
            << "seed " << seed << " record " << i;
      }
    }
  }
}

TEST(DispatcherPropertyTest, ZeroDurationBurstKeepsClassFifo) {
  // All-empty jobs in one class: completion order must equal submission
  // order even when execution takes no measurable time.
  DiasDispatcher dispatcher({0.0});
  std::atomic<bool> gate{false};
  std::atomic<bool> plug_running{false};
  dispatcher.submit(0, [&](double) {
    plug_running = true;
    while (!gate) std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  while (!plug_running) std::this_thread::yield();
  std::vector<int> executed;
  for (int i = 0; i < 200; ++i) {
    dispatcher.submit(0, [&executed, i](double) { executed.push_back(i); });
  }
  gate = true;
  const auto records = dispatcher.drain();
  ASSERT_EQ(executed.size(), 200u);
  EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
  for (const auto& r : records) {
    EXPECT_LE(r.arrival_s, r.start_s);
    EXPECT_LE(r.start_s, r.completion_s);
  }
}

}  // namespace
}  // namespace dias::core
