// FairShareLedger (ISSUE 7): per-tenant EWMA usage, burst credits, the
// over-quota ladder, weights, and Jain's fairness index. All clock inputs
// are caller-provided seconds, so every scenario here is deterministic.
#include "core/tenant.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace dias::core {
namespace {

// halflife 5 s => decaying by exactly 0.25 over 10 s, and
// tau = 5 / ln2 ~= 7.2135 s.
FairShareOptions strict_options() {
  FairShareOptions opts;
  opts.capacity_slots = 1.0;
  opts.usage_halflife_s = 5.0;
  opts.burst_credit_s = 0.5;
  opts.credit_refill_per_s = 0.05;
  opts.deprioritize_ratio = 2.0;
  opts.shed_ratio = 4.0;
  return opts;
}

TEST(TenantTest, WithinFairShareIsNone) {
  FairShareLedger ledger(strict_options());
  const TenantId t1{1};
  ledger.note_completion(t1, 1.0, 0.0);  // rate ~0.14 << capacity 1.0
  EXPECT_EQ(ledger.on_submit(t1, 0.0), TenantAction::kNone);
  const auto summary = ledger.summary(0.0);
  EXPECT_EQ(summary.tracked, 1u);
  EXPECT_EQ(summary.active, 1u);
  EXPECT_EQ(summary.over_quota, 0u);
  EXPECT_DOUBLE_EQ(summary.fairness_index, 1.0);  // < 2 active tenants
}

TEST(TenantTest, AloneGetsFullCapacityAsFairShare) {
  FairShareLedger ledger(strict_options());
  const TenantId t1{1};
  ledger.note_completion(t1, 5.0, 0.0);  // rate ~0.69 < capacity 1.0
  // A lone active tenant's fair share is the whole plant, so a rate under
  // capacity never triggers the ladder even though 0.69 > 1/n for any n>1.
  EXPECT_EQ(ledger.on_submit(t1, 0.0), TenantAction::kNone);
  EXPECT_DOUBLE_EQ(ledger.fair_rate(1.0), 1.0);
}

TEST(TenantTest, BurstCoveredByCreditsThenLadderEngages) {
  FairShareLedger ledger(strict_options());
  const TenantId t1{1}, t2{2};
  ledger.note_completion(t2, 1.0, 0.0);   // second active tenant: fair = 0.5
  ledger.note_completion(t1, 20.0, 0.0);  // rate ~2.77, way over fair
  // dt = 0 since creation: the initial 0.5 s credit balance is untouched,
  // so the burst is still covered.
  EXPECT_EQ(ledger.on_submit(t1, 0.0), TenantAction::kBurst);
  // 10 s later the over-share excess has charged (rate - fair) * dt >> 0.5,
  // the credits are gone, and the decayed rate 20*0.25/tau ~= 0.693 sits in
  // (fair, 2*fair] => deflate-first.
  EXPECT_EQ(ledger.on_submit(t1, 10.0), TenantAction::kDeflate);
}

TEST(TenantTest, LadderEscalatesWithOverQuotaRatio) {
  FairShareLedger ledger(strict_options());
  const TenantId deflate{1}, deprioritize{2}, shed{3}, small{4};
  ledger.note_completion(small, 1.0, 0.0);
  ledger.note_completion(deflate, 10.0, 0.0);
  ledger.note_completion(deprioritize, 20.0, 0.0);
  ledger.note_completion(shed, 40.0, 0.0);
  // Four active equal-weight tenants: fair = 0.25. After 10 s (decay 0.25,
  // credits exhausted by the charge), the rates are ~0.347, ~0.693 and
  // ~1.386: one in (fair, 2*fair], one in (2*fair, 4*fair], one beyond.
  EXPECT_EQ(ledger.on_submit(deflate, 10.0), TenantAction::kDeflate);
  EXPECT_EQ(ledger.on_submit(deprioritize, 10.0), TenantAction::kDeprioritize);
  EXPECT_EQ(ledger.on_submit(shed, 10.0), TenantAction::kShed);
  EXPECT_EQ(ledger.on_submit(small, 10.0), TenantAction::kNone);
  const auto summary = ledger.summary(10.0);
  EXPECT_EQ(summary.over_quota, 3u);
  EXPECT_GT(summary.fairness_index, 0.0);
  EXPECT_LT(summary.fairness_index, 1.0);
}

TEST(TenantTest, CreditsRefillWhileUnderShare) {
  FairShareLedger ledger(strict_options());
  const TenantId t1{1}, t2{2};
  ledger.note_completion(t2, 1.0, 0.0);
  ledger.note_completion(t1, 20.0, 0.0);
  ASSERT_EQ(ledger.on_submit(t1, 10.0), TenantAction::kDeflate);  // credits spent
  // 20 idle seconds decay the rate to ~0.043 << fair; the refill at
  // 0.05 credits/s restores the full 0.5 s balance (capped).
  EXPECT_EQ(ledger.on_submit(t1, 30.0), TenantAction::kNone);
  for (const auto& stat : ledger.stats(30.0)) {
    if (stat.tenant == t1) {
      EXPECT_DOUBLE_EQ(stat.credits_s, 0.5);
      EXPECT_EQ(stat.level, TenantAction::kNone);
    }
  }
}

TEST(TenantTest, SummaryAndStatsAreNonMutating) {
  FairShareLedger ledger(strict_options());
  const TenantId t1{1}, t2{2};
  ledger.note_completion(t2, 1.0, 0.0);
  ledger.note_completion(t1, 120.0, 0.0);
  // Sampling must not perturb credit accounting: the projected view at
  // t=10 says "shed", and the authoritative on_submit at t=10 agrees no
  // matter how often the view was taken.
  for (int i = 0; i < 5; ++i) {
    const auto summary = ledger.summary(10.0);
    EXPECT_EQ(summary.over_quota, 1u);
    (void)ledger.stats(10.0);
  }
  EXPECT_EQ(ledger.on_submit(t1, 10.0), TenantAction::kShed);
}

TEST(TenantTest, WeightsShiftFairShares) {
  FairShareLedger ledger(strict_options());
  const TenantId heavy{1}, light{2};
  ledger.set_weight(heavy, 3.0);
  ledger.note_completion(heavy, 1.0, 0.0);
  ledger.note_completion(light, 1.0, 0.0);
  // Active weights 3 + 1: the heavy tenant owns 3/4 of the plant.
  EXPECT_DOUBLE_EQ(ledger.fair_rate(3.0), 0.75);
  EXPECT_DOUBLE_EQ(ledger.fair_rate(1.0), 0.25);
}

TEST(TenantTest, JainIndex) {
  const std::array<double, 4> even{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index(even), 1.0);
  const std::array<double, 4> skewed{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index(skewed), 0.25);
  const std::array<double, 2> half{1.0, 3.0};
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index(half), 16.0 / 20.0);
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index(std::array<double, 1>{2.0}), 1.0);
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index({}), 1.0);
  const std::array<double, 3> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(FairShareLedger::jain_index(zeros), 1.0);
}

void construct_ledger(void (*mutate)(FairShareOptions&)) {
  FairShareOptions opts = strict_options();
  mutate(opts);
  FairShareLedger ledger(opts);
}

TEST(TenantTest, Validation) {
  EXPECT_THROW(construct_ledger([](FairShareOptions& o) { o.capacity_slots = 0.0; }),
               dias::precondition_error);
  EXPECT_THROW(construct_ledger([](FairShareOptions& o) { o.usage_halflife_s = 0.0; }),
               dias::precondition_error);
  EXPECT_THROW(construct_ledger([](FairShareOptions& o) { o.shed_ratio = 1.5; }),
               dias::precondition_error);
  EXPECT_THROW(construct_ledger([](FairShareOptions& o) { o.stripes = 0; }),
               dias::precondition_error);
  FairShareLedger ledger(strict_options());
  EXPECT_THROW(ledger.on_submit(TenantId{}, 0.0), dias::precondition_error);
  EXPECT_THROW(ledger.set_weight(TenantId{1}, 0.0), dias::precondition_error);
  EXPECT_THROW(ledger.note_completion(TenantId{1}, -1.0, 0.0), dias::precondition_error);
}

TEST(TenantTest, StripedTableHandlesConcurrentTenants) {
  FairShareOptions opts = strict_options();
  opts.stripes = 8;
  FairShareLedger ledger(opts);
  constexpr int kThreads = 8;
  constexpr int kTenantsPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTenantsPerThread; ++i) {
        const TenantId id{static_cast<std::uint64_t>(t * kTenantsPerThread + i + 1)};
        ledger.note_completion(id, 0.01, 0.0);
        (void)ledger.on_submit(id, 0.001);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto summary = ledger.summary(0.001);
  EXPECT_EQ(summary.tracked, static_cast<std::size_t>(kThreads * kTenantsPerThread));
  // Identical tiny usage everywhere: near-perfect fairness.
  EXPECT_GT(summary.fairness_index, 0.99);
}

}  // namespace
}  // namespace dias::core
