#include "storage/block_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/word_count.hpp"
#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "storage/engine_io.hpp"
#include "storage/spill_store.hpp"
#include "workload/text_corpus.hpp"

namespace dias::storage {
namespace {

class BlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("dias_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  BlockStore make_store(std::size_t block_bytes = 256, int replication = 1) {
    BlockStoreOptions options;
    options.root = root_;
    options.block_bytes = block_bytes;
    options.replication = replication;
    return BlockStore(options);
  }

  static std::vector<std::string> numbered_lines(std::size_t n) {
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < n; ++i) {
      lines.push_back("line-" + std::to_string(i) + std::string(20, 'x'));
    }
    return lines;
  }

  std::filesystem::path root_;
};

TEST_F(BlockStoreTest, WriteAndReadRoundTrip) {
  auto store = make_store();
  const auto lines = numbered_lines(50);
  const auto meta = store.write_lines("corpus", lines);
  EXPECT_EQ(meta.lines, 50u);
  EXPECT_GT(meta.blocks, 1u);  // 256-byte blocks force several
  EXPECT_TRUE(store.exists("corpus"));
  EXPECT_EQ(store.read_all_lines("corpus"), lines);
  const auto stat = store.stat("corpus");
  EXPECT_EQ(stat.blocks, meta.blocks);
  EXPECT_EQ(stat.bytes, meta.bytes);
}

TEST_F(BlockStoreTest, BlockBoundariesPreserveLines) {
  auto store = make_store(128);
  const auto lines = numbered_lines(30);
  const auto meta = store.write_lines("f", lines);
  std::vector<std::string> joined;
  for (std::size_t b = 0; b < meta.blocks; ++b) {
    for (auto& l : store.read_block_lines("f", b)) joined.push_back(std::move(l));
  }
  EXPECT_EQ(joined, lines);  // no line split across blocks
}

TEST_F(BlockStoreTest, IoCountersTrackReads) {
  auto store = make_store();
  store.write_lines("f", numbered_lines(40));
  store.reset_io_stats();
  store.read_block_lines("f", 0);
  store.read_block_lines("f", 1);
  const auto io = store.io_stats();
  EXPECT_EQ(io.blocks_read, 2u);
  EXPECT_GT(io.bytes_read, 0u);
}

TEST_F(BlockStoreTest, ChecksumDetectsCorruptionAndReplicaRecovers) {
  auto store = make_store(256, /*replication=*/2);
  const auto meta = store.write_lines("f", numbered_lines(40));
  ASSERT_GE(meta.blocks, 1u);
  // Corrupt the primary copy of block 0.
  {
    std::ofstream out(root_ / "f" / "block-0.r0", std::ios::binary);
    out << "garbage";
  }
  // Read succeeds via replica 1; file verifies fully.
  EXPECT_NO_THROW(store.read_block_lines("f", 0));
  EXPECT_EQ(store.verify("f"), meta.blocks);
}

TEST_F(BlockStoreTest, AllReplicasCorruptThrows) {
  auto store = make_store(256, 1);
  store.write_lines("f", numbered_lines(40));
  {
    std::ofstream out(root_ / "f" / "block-0.r0", std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(store.read_block_lines("f", 0), dias::error);
  EXPECT_LT(store.verify("f"), store.stat("f").blocks);
}

TEST_F(BlockStoreTest, ListAndRemove) {
  auto store = make_store();
  store.write_lines("bbb", numbered_lines(5));
  store.write_lines("aaa", numbered_lines(5));
  EXPECT_EQ(store.list(), (std::vector<std::string>{"aaa", "bbb"}));
  store.remove("aaa");
  EXPECT_EQ(store.list(), (std::vector<std::string>{"bbb"}));
  EXPECT_FALSE(store.exists("aaa"));
  EXPECT_THROW(store.stat("aaa"), dias::precondition_error);
}

TEST_F(BlockStoreTest, NameValidation) {
  auto store = make_store();
  EXPECT_THROW(store.write_lines("", {}), dias::precondition_error);
  EXPECT_THROW(store.write_lines("a/b", {}), dias::precondition_error);
  EXPECT_THROW(store.write_lines("..", {}), dias::precondition_error);
}

TEST_F(BlockStoreTest, DroppedTasksSkipBlockFetches) {
  // The paper's point: early task dropping saves the data-fetch overhead.
  auto store = make_store(512);
  workload::TextCorpusParams params;
  params.posts = 400;
  params.seed = 31;
  const auto corpus = workload::generate_text_corpus("site", params);
  const auto meta = store.write_lines("site", corpus.rows);
  ASSERT_GE(meta.blocks, 10u);

  engine::Engine::Options eopts;
  eopts.workers = 4;
  engine::Engine eng(eopts);

  store.reset_io_stats();
  const auto full = read_lines_dataset(eng, store, "site", 0.0);
  const auto full_io = store.io_stats();
  EXPECT_EQ(full_io.blocks_read, meta.blocks);
  EXPECT_EQ(full.total_size(), corpus.rows.size());

  store.reset_io_stats();
  const auto half = read_lines_dataset(eng, store, "site", 0.5);
  const auto half_io = store.io_stats();
  EXPECT_EQ(half_io.blocks_read, (meta.blocks + 1) / 2);
  EXPECT_LT(half_io.bytes_read, full_io.bytes_read);
  EXPECT_LT(half.total_size(), corpus.rows.size());
}

TEST_F(BlockStoreTest, WordCountFromStorageMatchesInMemory) {
  auto store = make_store(1024);
  workload::TextCorpusParams params;
  params.posts = 300;
  params.seed = 37;
  const auto corpus = workload::generate_text_corpus("site", params);
  store.write_lines("site", corpus.rows);

  engine::Engine::Options eopts;
  eopts.workers = 4;
  engine::Engine eng(eopts);
  const auto ds = read_lines_dataset(eng, store, "site", 0.0);
  const auto from_storage = analytics::word_count(eng, ds, 8, 0.0);
  const auto exact = analytics::exact_word_count(corpus.rows);
  EXPECT_EQ(from_storage.counts.size(), exact.size());
  for (const auto& [word, count] : exact) {
    EXPECT_EQ(from_storage.counts.at(word), count);
  }
}

TEST_F(BlockStoreTest, WriteBytesAndReaderRoundTrip) {
  auto store = make_store(/*block_bytes=*/64);
  // Binary payload with embedded newlines and NULs: byte blocks must not
  // interpret content the way line blocks do.
  std::string data;
  for (int i = 0; i < 500; ++i) data.push_back(static_cast<char>(i % 251));
  const auto meta = store.write_bytes("seg", data);
  EXPECT_EQ(meta.bytes, data.size());
  EXPECT_EQ(meta.lines, 0u);
  EXPECT_EQ(meta.blocks, (data.size() + 63) / 64);

  // Random access...
  EXPECT_EQ(store.read_block_bytes("seg", 0), data.substr(0, 64));
  EXPECT_EQ(store.read_block_bytes("seg", meta.blocks - 1),
            data.substr((meta.blocks - 1) * 64));
  // ...and streaming: concatenated chunks reproduce the payload exactly.
  auto reader = store.open_reader("seg");
  std::string streamed;
  std::string chunk;
  while (reader.next(chunk)) streamed += chunk;
  EXPECT_EQ(streamed, data);
}

TEST_F(BlockStoreTest, ReaderSurfacesCorruptBlock) {
  auto store = make_store(/*block_bytes=*/64);
  store.write_bytes("seg", std::string(300, 'z'));
  {
    std::ofstream out(root_ / "seg" / "block-2.r0", std::ios::binary);
    out << "garbage";
  }
  auto reader = store.open_reader("seg");
  std::string chunk;
  EXPECT_TRUE(reader.next(chunk));  // blocks 0-1 are intact
  EXPECT_TRUE(reader.next(chunk));
  EXPECT_THROW(reader.next(chunk), dias::error);
}

// --- spill I/O fault injection (ISSUE 6 satellite 3) -----------------------
//
// Storage faults under a spilled shuffle must surface as TaskFailedError —
// the typed failure PR-1 retry counts against max_attempts and PR-5
// cancellation outranks — never as a raw dias::error that would bypass
// both. Every mode here fails permanently, so fault-tolerant runs exhaust
// their retry budget instead of masking the fault with a lucky attempt.
class FaultySpill final : public engine::SpillBackend {
 public:
  enum class Mode { kShortWrite, kMissingBlock, kCorruptHeader, kFailWrite };

  FaultySpill(BlockStore& store, Mode mode) : inner_(store, "faulty"), mode_(mode) {}

  std::uint64_t write(const std::string& bytes) override {
    switch (mode_) {
      case Mode::kFailWrite:
        throw dias::error("injected fault: spill device full");
      case Mode::kShortWrite:
        // Persist only a prefix; the decoder hits end-of-stream mid-entry.
        return inner_.write(bytes.substr(0, bytes.size() / 2));
      case Mode::kCorruptHeader: {
        std::string mangled = bytes;
        mangled[0] = static_cast<char>(mangled[0] ^ 0x7F);  // break the magic
        return inner_.write(mangled);
      }
      case Mode::kMissingBlock: {
        const auto id = inner_.write(bytes);
        inner_.release(id);  // vanish underneath the engine
        return id;
      }
    }
    throw dias::error("unreachable");
  }

  std::unique_ptr<engine::SpillReader> open(std::uint64_t handle) override {
    return inner_.open(handle);
  }
  void release(std::uint64_t handle) override {
    if (mode_ != Mode::kMissingBlock) inner_.release(handle);
  }
  engine::SpillStats stats() const override { return inner_.stats(); }

 private:
  BlockStoreSpill inner_;
  Mode mode_;
};

class SpillFaultTest : public BlockStoreTest {
 protected:
  static std::vector<std::pair<std::uint64_t, std::int64_t>> records() {
    std::vector<std::pair<std::uint64_t, std::int64_t>> out;
    for (std::uint64_t i = 0; i < 10000; ++i) out.push_back({i % 701, 1});
    return out;
  }

  // A reduce_by_key whose working set dwarfs the 4 KiB budget, so every
  // run spills — and therefore has to read segments back through the
  // faulty backend during the merge. The merge runs non-droppable so a
  // fault-exhausted task is fatal rather than silently degrading the
  // answer (the droppable-degrade path gets its own test below).
  static void run_spilled_shuffle(engine::Engine& eng, engine::SpillBackend& spill,
                                  bool droppable = false) {
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(records(), 8);
    engine::StageOptions opts;
    opts.droppable = droppable;
    engine::ShuffleOptions shuffle;
    shuffle.target_buffer_bytes = 2048;
    shuffle.memory_budget_bytes = 4096;
    eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6, opts, shuffle);
  }
};

TEST_F(SpillFaultTest, ReadFaultsSurfaceAsTaskFailedError) {
  for (const auto mode : {FaultySpill::Mode::kShortWrite, FaultySpill::Mode::kMissingBlock,
                          FaultySpill::Mode::kCorruptHeader}) {
    SCOPED_TRACE(static_cast<int>(mode));
    auto store = make_store(/*block_bytes=*/4096);
    FaultySpill spill(store, mode);
    engine::Engine::Options opts;
    opts.workers = 4;
    engine::Engine eng(opts);  // legacy path: failures propagate directly
    EXPECT_THROW(run_spilled_shuffle(eng, spill), engine::TaskFailedError);
  }
}

// ISSUE 10 satellite (b): spilling is pure relocation, so a failed spill
// write is absorbable — the segment simply stays resident. The breaker
// trips after the consecutive-failure threshold and the shuffle degrades
// to in-memory with an exact answer, surfacing the event through StageInfo
// fault accounting instead of a TaskFailedError.
TEST_F(SpillFaultTest, WriteFaultTripsBreakerAndDegradesToInMemory) {
  auto store = make_store(4096);
  FaultySpill spill(store, FaultySpill::Mode::kFailWrite);
  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(records(), 8);
  engine::StageOptions sopts;
  sopts.droppable = false;
  engine::ShuffleOptions shuffle;
  shuffle.target_buffer_bytes = 2048;
  shuffle.memory_budget_bytes = 4096;
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6, sopts, shuffle);

  auto all = reduced.collect();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 701u);
  for (const auto& [key, count] : all) {
    EXPECT_EQ(count, 10000 / 701 + (key < 10000 % 701 ? 1 : 0)) << "key " << key;
  }
  EXPECT_EQ(eng.spill_breaker().state(), engine::SpillBreaker::State::kOpen);
  EXPECT_GE(eng.spill_breaker().trips(), 1u);
  // StageInfo distinguishes "degraded to in-memory" (fallback segments,
  // breaker open) from "retried clean" (retries with no fallback).
  std::size_t fallback = 0;
  std::size_t write_failures = 0;
  bool breaker_open_logged = false;
  for (const auto& s : eng.stage_log()) {
    fallback += s.shuffle_spill_fallback_segments;
    write_failures += s.shuffle_spill_write_failures;
    breaker_open_logged = breaker_open_logged || s.spill_breaker_open;
  }
  EXPECT_GT(fallback, 0u);
  EXPECT_GT(write_failures, 0u);
  EXPECT_TRUE(breaker_open_logged);
  // Nothing landed on disk, so nothing was restored from it.
  EXPECT_EQ(spill.stats().segments_written, 0u);
}

// Writes succeed, then the device "fills": the breaker trips mid-shuffle
// and the merge consumes a mix of restored (healthy writes) and resident
// (fallback) segments — byte-identically to a clean run.
class FailAfterNSpill final : public engine::SpillBackend {
 public:
  FailAfterNSpill(BlockStore& store, int healthy)
      : inner_(store, "failafter"), healthy_(healthy) {}

  std::uint64_t write(const std::string& bytes) override {
    if (healthy_.fetch_sub(1) <= 0) {
      throw dias::error("injected fault: spill device full");
    }
    return inner_.write(bytes);
  }
  std::unique_ptr<engine::SpillReader> open(std::uint64_t handle) override {
    return inner_.open(handle);
  }
  void release(std::uint64_t handle) override { inner_.release(handle); }
  engine::SpillStats stats() const override { return inner_.stats(); }

 private:
  BlockStoreSpill inner_;
  std::atomic<int> healthy_;
};

TEST_F(SpillFaultTest, BreakerTripsMidShuffleWithByteIdenticalResult) {
  auto store = make_store(4096);
  FailAfterNSpill spill(store, /*healthy=*/3);
  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(records(), 8);
  engine::StageOptions sopts;
  sopts.droppable = false;
  engine::ShuffleOptions shuffle;
  shuffle.target_buffer_bytes = 2048;
  shuffle.memory_budget_bytes = 4096;
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6, sopts, shuffle);

  auto all = reduced.collect();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 701u);
  for (const auto& [key, count] : all) {
    EXPECT_EQ(count, 10000 / 701 + (key < 10000 % 701 ? 1 : 0)) << "key " << key;
  }
  // Both worlds really happened: healthy segments hit the device and were
  // restored, failed ones stayed resident.
  EXPECT_EQ(spill.stats().segments_written, 3u);
  EXPECT_GE(eng.spill_breaker().trips(), 1u);
  std::size_t fallback = 0;
  std::size_t restored = 0;
  for (const auto& s : eng.stage_log()) {
    fallback += s.shuffle_spill_fallback_segments;
    restored += s.shuffle_restored_segments;
  }
  EXPECT_GT(fallback, 0u);
  EXPECT_GT(restored, 0u);
}

TEST_F(SpillFaultTest, RetryPathExhaustsAttemptsOnPermanentFault) {
  auto store = make_store(4096);
  FaultySpill spill(store, FaultySpill::Mode::kCorruptHeader);
  engine::Engine::Options opts;
  opts.workers = 4;
  opts.fault.max_attempts = 2;  // fault-tolerant path: retry fires, then gives up
  engine::Engine eng(opts);
  try {
    run_spilled_shuffle(eng, spill);
    FAIL() << "expected TaskFailedError";
  } catch (const engine::TaskFailedError& e) {
    EXPECT_NE(std::string(e.what()).find("attempt"), std::string::npos) << e.what();
  }
  // The stage log shows the retry actually happened before exhaustion.
  std::size_t retries = 0;
  for (const auto& s : eng.stage_log()) retries += s.retries;
  EXPECT_GT(retries, 0u);
}

TEST_F(SpillFaultTest, DroppableMergeDegradesInsteadOfFailing) {
  // On a droppable merge stage the fault-tolerant path treats an exhausted
  // task like a dropped one — differential approximation absorbs the loss
  // and the job completes, with the dead partitions on the stage log.
  auto store = make_store(4096);
  FaultySpill spill(store, FaultySpill::Mode::kCorruptHeader);
  engine::Engine::Options opts;
  opts.workers = 4;
  opts.fault.max_attempts = 2;
  engine::Engine eng(opts);
  EXPECT_NO_THROW(run_spilled_shuffle(eng, spill, /*droppable=*/true));
  ASSERT_FALSE(eng.stage_log().empty());
  EXPECT_FALSE(eng.stage_log().back().failed_partition_ids.empty());
}

// A transient read fault: the first `failures` open() calls throw, later
// ones succeed — the shape a retry is actually meant to absorb.
class FlakyOpenSpill final : public engine::SpillBackend {
 public:
  FlakyOpenSpill(BlockStore& store, int failures)
      : inner_(store, "flaky"), failures_(failures) {}

  std::uint64_t write(const std::string& bytes) override { return inner_.write(bytes); }
  std::unique_ptr<engine::SpillReader> open(std::uint64_t handle) override {
    if (failures_.fetch_sub(1) > 0) {
      throw dias::error("injected fault: transient spill read error");
    }
    return inner_.open(handle);
  }
  void release(std::uint64_t handle) override { inner_.release(handle); }
  engine::SpillStats stats() const override { return inner_.stats(); }

 private:
  BlockStoreSpill inner_;
  std::atomic<int> failures_;
};

TEST_F(SpillFaultTest, TransientReadFaultRecoversExactAnswerOnRetry) {
  // Merge consumption is non-destructive while a backend is attached, so a
  // retried merge body finds every segment intact — resident and spilled —
  // and the recovered answer is exact, not silently missing the segments a
  // failed attempt had already consumed.
  auto store = make_store(4096);
  FlakyOpenSpill spill(store, /*failures=*/2);
  engine::Engine::Options eopts;
  eopts.workers = 4;
  eopts.fault.max_attempts = 3;  // two injected failures can never exhaust a task
  engine::Engine eng(eopts);
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(records(), 8);
  engine::StageOptions sopts;
  sopts.droppable = false;  // any exhaustion would be loud, not degraded
  engine::ShuffleOptions shuffle;
  shuffle.target_buffer_bytes = 2048;
  shuffle.memory_budget_bytes = 4096;
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6, sopts, shuffle);

  auto all = reduced.collect();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 701u);
  for (const auto& [key, count] : all) {
    EXPECT_EQ(count, 10000 / 701 + (key < 10000 % 701 ? 1 : 0)) << "key " << key;
  }
  std::size_t retries = 0;
  for (const auto& s : eng.stage_log()) retries += s.retries;
  EXPECT_GT(retries, 0u);  // the faults really fired and were retried
}

TEST_F(SpillFaultTest, CancellationOutranksSpillFaults) {
  auto store = make_store(4096);
  FaultySpill spill(store, FaultySpill::Mode::kCorruptHeader);
  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  CancellationToken token;
  token.request_cancel();  // fired before the stage starts
  eng.set_cancellation(token);
  EXPECT_THROW(run_spilled_shuffle(eng, spill), dias::JobCancelledError);
}

TEST(Fnv1aTest, KnownProperties) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("dias"), fnv1a("dias"));
}

}  // namespace
}  // namespace dias::storage
