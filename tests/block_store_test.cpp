#include "storage/block_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analytics/word_count.hpp"
#include "common/error.hpp"
#include "storage/engine_io.hpp"
#include "workload/text_corpus.hpp"

namespace dias::storage {
namespace {

class BlockStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("dias_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  BlockStore make_store(std::size_t block_bytes = 256, int replication = 1) {
    BlockStoreOptions options;
    options.root = root_;
    options.block_bytes = block_bytes;
    options.replication = replication;
    return BlockStore(options);
  }

  static std::vector<std::string> numbered_lines(std::size_t n) {
    std::vector<std::string> lines;
    for (std::size_t i = 0; i < n; ++i) {
      lines.push_back("line-" + std::to_string(i) + std::string(20, 'x'));
    }
    return lines;
  }

  std::filesystem::path root_;
};

TEST_F(BlockStoreTest, WriteAndReadRoundTrip) {
  auto store = make_store();
  const auto lines = numbered_lines(50);
  const auto meta = store.write_lines("corpus", lines);
  EXPECT_EQ(meta.lines, 50u);
  EXPECT_GT(meta.blocks, 1u);  // 256-byte blocks force several
  EXPECT_TRUE(store.exists("corpus"));
  EXPECT_EQ(store.read_all_lines("corpus"), lines);
  const auto stat = store.stat("corpus");
  EXPECT_EQ(stat.blocks, meta.blocks);
  EXPECT_EQ(stat.bytes, meta.bytes);
}

TEST_F(BlockStoreTest, BlockBoundariesPreserveLines) {
  auto store = make_store(128);
  const auto lines = numbered_lines(30);
  const auto meta = store.write_lines("f", lines);
  std::vector<std::string> joined;
  for (std::size_t b = 0; b < meta.blocks; ++b) {
    for (auto& l : store.read_block_lines("f", b)) joined.push_back(std::move(l));
  }
  EXPECT_EQ(joined, lines);  // no line split across blocks
}

TEST_F(BlockStoreTest, IoCountersTrackReads) {
  auto store = make_store();
  store.write_lines("f", numbered_lines(40));
  store.reset_io_stats();
  store.read_block_lines("f", 0);
  store.read_block_lines("f", 1);
  const auto io = store.io_stats();
  EXPECT_EQ(io.blocks_read, 2u);
  EXPECT_GT(io.bytes_read, 0u);
}

TEST_F(BlockStoreTest, ChecksumDetectsCorruptionAndReplicaRecovers) {
  auto store = make_store(256, /*replication=*/2);
  const auto meta = store.write_lines("f", numbered_lines(40));
  ASSERT_GE(meta.blocks, 1u);
  // Corrupt the primary copy of block 0.
  {
    std::ofstream out(root_ / "f" / "block-0.r0", std::ios::binary);
    out << "garbage";
  }
  // Read succeeds via replica 1; file verifies fully.
  EXPECT_NO_THROW(store.read_block_lines("f", 0));
  EXPECT_EQ(store.verify("f"), meta.blocks);
}

TEST_F(BlockStoreTest, AllReplicasCorruptThrows) {
  auto store = make_store(256, 1);
  store.write_lines("f", numbered_lines(40));
  {
    std::ofstream out(root_ / "f" / "block-0.r0", std::ios::binary);
    out << "garbage";
  }
  EXPECT_THROW(store.read_block_lines("f", 0), dias::error);
  EXPECT_LT(store.verify("f"), store.stat("f").blocks);
}

TEST_F(BlockStoreTest, ListAndRemove) {
  auto store = make_store();
  store.write_lines("bbb", numbered_lines(5));
  store.write_lines("aaa", numbered_lines(5));
  EXPECT_EQ(store.list(), (std::vector<std::string>{"aaa", "bbb"}));
  store.remove("aaa");
  EXPECT_EQ(store.list(), (std::vector<std::string>{"bbb"}));
  EXPECT_FALSE(store.exists("aaa"));
  EXPECT_THROW(store.stat("aaa"), dias::precondition_error);
}

TEST_F(BlockStoreTest, NameValidation) {
  auto store = make_store();
  EXPECT_THROW(store.write_lines("", {}), dias::precondition_error);
  EXPECT_THROW(store.write_lines("a/b", {}), dias::precondition_error);
  EXPECT_THROW(store.write_lines("..", {}), dias::precondition_error);
}

TEST_F(BlockStoreTest, DroppedTasksSkipBlockFetches) {
  // The paper's point: early task dropping saves the data-fetch overhead.
  auto store = make_store(512);
  workload::TextCorpusParams params;
  params.posts = 400;
  params.seed = 31;
  const auto corpus = workload::generate_text_corpus("site", params);
  const auto meta = store.write_lines("site", corpus.rows);
  ASSERT_GE(meta.blocks, 10u);

  engine::Engine::Options eopts;
  eopts.workers = 4;
  engine::Engine eng(eopts);

  store.reset_io_stats();
  const auto full = read_lines_dataset(eng, store, "site", 0.0);
  const auto full_io = store.io_stats();
  EXPECT_EQ(full_io.blocks_read, meta.blocks);
  EXPECT_EQ(full.total_size(), corpus.rows.size());

  store.reset_io_stats();
  const auto half = read_lines_dataset(eng, store, "site", 0.5);
  const auto half_io = store.io_stats();
  EXPECT_EQ(half_io.blocks_read, (meta.blocks + 1) / 2);
  EXPECT_LT(half_io.bytes_read, full_io.bytes_read);
  EXPECT_LT(half.total_size(), corpus.rows.size());
}

TEST_F(BlockStoreTest, WordCountFromStorageMatchesInMemory) {
  auto store = make_store(1024);
  workload::TextCorpusParams params;
  params.posts = 300;
  params.seed = 37;
  const auto corpus = workload::generate_text_corpus("site", params);
  store.write_lines("site", corpus.rows);

  engine::Engine::Options eopts;
  eopts.workers = 4;
  engine::Engine eng(eopts);
  const auto ds = read_lines_dataset(eng, store, "site", 0.0);
  const auto from_storage = analytics::word_count(eng, ds, 8, 0.0);
  const auto exact = analytics::exact_word_count(corpus.rows);
  EXPECT_EQ(from_storage.counts.size(), exact.size());
  for (const auto& [word, count] : exact) {
    EXPECT_EQ(from_storage.counts.at(word), count);
  }
}

TEST(Fnv1aTest, KnownProperties) {
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("dias"), fnv1a("dias"));
}

}  // namespace
}  // namespace dias::storage
