#include "cluster/cluster_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dias::cluster {
namespace {

// A single-stage deterministic job: `tasks` tasks of `task_s` seconds.
JobSpec simple_job(std::size_t priority, int tasks, double task_s) {
  JobSpec spec;
  spec.priority = priority;
  spec.stages = {{StageKind::kMap, tasks, task_s, 0.0}};
  return spec;
}

ClusterSimulator::Config det_config(int slots) {
  ClusterSimulator::Config config;
  config.slots = slots;
  config.task_time_family = TaskTimeFamily::kDeterministic;
  config.warmup_jobs = 0;
  return config;
}

TEST(JobSpecTest, DroppabilityByStageKind) {
  EXPECT_FALSE(is_droppable(StageKind::kSetup));
  EXPECT_TRUE(is_droppable(StageKind::kMap));
  EXPECT_FALSE(is_droppable(StageKind::kShuffle));
  EXPECT_TRUE(is_droppable(StageKind::kShuffleMap));
  EXPECT_TRUE(is_droppable(StageKind::kReduce));
  EXPECT_FALSE(is_droppable(StageKind::kResult));
}

TEST(JobSpecTest, StageKindNames) {
  EXPECT_STREQ(to_string(StageKind::kSetup), "setup");
  EXPECT_STREQ(to_string(StageKind::kMap), "map");
  EXPECT_STREQ(to_string(StageKind::kShuffleMap), "shuffle-map");
  EXPECT_STREQ(to_string(StageKind::kResult), "result");
}

TEST(JobSpecTest, WorkAndTaskTotals) {
  JobSpec spec;
  spec.stages = {
      {StageKind::kSetup, 1, 8.0, 0.0},
      {StageKind::kMap, 50, 2.0, 0.1},
      {StageKind::kShuffle, 1, 3.0, 0.0},
      {StageKind::kReduce, 20, 0.5, 0.1},
  };
  EXPECT_NEAR(spec.total_work(), 8.0 + 100.0 + 3.0 + 10.0, 1e-12);
  EXPECT_EQ(spec.total_tasks(), 72);
}

TEST(ClusterSimulatorTest, SingleJobMakespan) {
  // 10 deterministic 2s tasks on 4 slots: waves of 4/4/2 -> 6 seconds.
  auto result = simulate(det_config(4), {{0.0, simple_job(0, 10, 2.0)}});
  ASSERT_EQ(result.per_class.size(), 1u);
  ASSERT_EQ(result.per_class[0].completed, 1u);
  EXPECT_NEAR(result.per_class[0].response.mean(), 6.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].execution.mean(), 6.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].queueing.mean(), 0.0, 1e-9);
  EXPECT_NEAR(result.busy_time, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.resource_waste(), 0.0);
}

TEST(ClusterSimulatorTest, MultiStageJobRespectsBarriers) {
  JobSpec spec;
  spec.priority = 0;
  spec.stages = {
      {StageKind::kSetup, 1, 3.0, 0.0},
      {StageKind::kMap, 4, 2.0, 0.0},     // 2 slots -> 2 waves -> 4s
      {StageKind::kShuffle, 1, 1.0, 0.0},
      {StageKind::kReduce, 2, 5.0, 0.0},  // 1 wave -> 5s
  };
  auto result = simulate(det_config(2), {{0.0, spec}});
  EXPECT_NEAR(result.per_class[0].response.mean(), 3.0 + 4.0 + 1.0 + 5.0, 1e-9);
}

TEST(ClusterSimulatorTest, FcfsWithinClass) {
  // Two same-priority jobs: the second queues behind the first.
  auto result = simulate(det_config(1), {{0.0, simple_job(0, 1, 10.0)},
                                         {1.0, simple_job(0, 1, 10.0)}});
  EXPECT_EQ(result.per_class[0].completed, 2u);
  // First: response 10; second: arrives at 1, starts at 10, done at 20.
  EXPECT_NEAR(result.per_class[0].response.max(), 19.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].queueing.max(), 9.0, 1e-9);
}

TEST(ClusterSimulatorTest, HigherPriorityDispatchedFirst) {
  // Busy engine; low then high arrive. At completion the high job must go
  // first even though the low job arrived earlier.
  auto result = simulate(det_config(1), {{0.0, simple_job(0, 1, 10.0)},
                                         {1.0, simple_job(0, 1, 10.0)},
                                         {2.0, simple_job(1, 1, 10.0)}});
  // high: arrives 2, starts 10, ends 20 -> response 18.
  EXPECT_NEAR(result.per_class[1].response.mean(), 18.0, 1e-9);
  // low #2: arrives 1, starts 20, ends 30 -> response 29.
  EXPECT_NEAR(result.per_class[0].response.max(), 29.0, 1e-9);
}

TEST(ClusterSimulatorTest, NonPreemptiveNeverEvicts) {
  auto config = det_config(1);
  config.scheduler.preemptive = false;
  auto result = simulate(config, {{0.0, simple_job(0, 1, 100.0)},
                                  {1.0, simple_job(1, 1, 1.0)}});
  EXPECT_EQ(result.total_evictions, 0u);
  EXPECT_DOUBLE_EQ(result.wasted_time, 0.0);
  // High job waits for the low job: response = (100 - 1) + 1.
  EXPECT_NEAR(result.per_class[1].response.mean(), 100.0, 1e-9);
}

TEST(ClusterSimulatorTest, PreemptiveEvictsAndReExecutes) {
  auto config = det_config(1);
  config.scheduler.preemptive = true;
  auto result = simulate(config, {{0.0, simple_job(0, 1, 100.0)},
                                  {10.0, simple_job(1, 1, 5.0)}});
  EXPECT_EQ(result.total_evictions, 1u);
  // Low: runs 0-10 (wasted), re-runs 15-115 -> response 115.
  EXPECT_NEAR(result.per_class[0].response.mean(), 115.0, 1e-9);
  // High: arrives 10, runs immediately -> response 5.
  EXPECT_NEAR(result.per_class[1].response.mean(), 5.0, 1e-9);
  EXPECT_NEAR(result.wasted_time, 10.0, 1e-9);
  // Waste fraction: 10 wasted out of 115 busy.
  EXPECT_NEAR(result.resource_waste(), 10.0 / 115.0, 1e-9);
}

TEST(ClusterSimulatorTest, EvictedJobReturnsToHeadOfItsBuffer) {
  auto config = det_config(1);
  config.scheduler.preemptive = true;
  // Low A starts; low B queues; high evicts A. After high, A (head) must
  // run before B.
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)},
                                  {1.0, simple_job(0, 1, 20.0)},
                                  {2.0, simple_job(1, 1, 4.0)}});
  // A: wasted 0-2, high 2-6, A re-runs 6-26 (response 26), B 26-46
  // (response 45).
  EXPECT_NEAR(result.per_class[0].response.min(), 26.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].response.max(), 45.0, 1e-9);
}

TEST(ClusterSimulatorTest, EqualPriorityDoesNotPreempt) {
  auto config = det_config(1);
  config.scheduler.preemptive = true;
  auto result = simulate(config, {{0.0, simple_job(1, 1, 10.0)},
                                  {1.0, simple_job(1, 1, 1.0)}});
  EXPECT_EQ(result.total_evictions, 0u);
}

TEST(ClusterSimulatorTest, DropReducesExecutedTasks) {
  auto config = det_config(2);
  config.scheduler.theta = {0.5};  // 4 tasks -> 2 tasks -> 1 wave
  auto result = simulate(config, {{0.0, simple_job(0, 4, 3.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 3.0, 1e-9);
}

TEST(ClusterSimulatorTest, DropOnlyAppliesToDroppableStages) {
  JobSpec spec;
  spec.priority = 0;
  spec.stages = {
      {StageKind::kSetup, 1, 2.0, 0.0},
      {StageKind::kMap, 2, 4.0, 0.0},
  };
  auto config = det_config(2);
  config.scheduler.theta = {0.5};  // map 2 -> 1 task; setup untouched
  auto result = simulate(config, {{0.0, spec}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 2.0 + 4.0, 1e-9);
}

TEST(ClusterSimulatorTest, SprintAcceleratesAfterTimeout) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {4.0};
  // One 10s task: 4s at speed 1 (6s work left), then 6/2 = 3s sprinted.
  auto result = simulate(config, {{0.0, simple_job(0, 1, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 7.0, 1e-9);
  EXPECT_NEAR(result.sprint_time, 3.0, 1e-9);
}

TEST(ClusterSimulatorTest, SprintFromDispatchWhenTimeoutZero) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.speedup = 2.5;
  config.sprint.timeout_s = {0.0};
  auto result = simulate(config, {{0.0, simple_job(0, 1, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 4.0, 1e-9);
}

TEST(ClusterSimulatorTest, SprintStopsWhenBudgetDepletes) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {0.0};
  config.sprint.base_power_w = 100.0;
  config.sprint.sprint_power_w = 200.0;  // extra 100 W
  config.sprint.budget_joules = 400.0;   // 4 s of sprinting
  // 20s task: 4s sprinted (8s work done), 12s at base -> 16s total.
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 16.0, 1e-9);
  EXPECT_NEAR(result.sprint_time, 4.0, 1e-9);
}

TEST(ClusterSimulatorTest, OnlyConfiguredClassesSprint) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {std::numeric_limits<double>::infinity(), 0.0};
  auto result = simulate(config, {{0.0, simple_job(0, 1, 10.0)},
                                  {100.0, simple_job(1, 1, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 10.0, 1e-9);  // low: no sprint
  EXPECT_NEAR(result.per_class[1].execution.mean(), 5.0, 1e-9);   // high: sprinted
}

TEST(ClusterSimulatorTest, EnergyAccounting) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {4.0};
  config.sprint.base_power_w = 180.0;
  config.sprint.sprint_power_w = 270.0;
  config.idle_power_w = 0.0;
  // Job: 4s base + 3s sprint (from SprintAcceleratesAfterTimeout).
  auto result = simulate(config, {{0.0, simple_job(0, 1, 10.0)}});
  EXPECT_NEAR(result.energy_joules, 180.0 * 4.0 + 270.0 * 3.0, 1e-6);
}

TEST(ClusterSimulatorTest, IdlePowerCharged) {
  auto config = det_config(1);
  config.idle_power_w = 50.0;
  config.sprint.base_power_w = 180.0;
  // Job of 5s arriving at t=3: horizon 8, idle 3, busy 5.
  auto result = simulate(config, {{3.0, simple_job(0, 1, 5.0)}});
  EXPECT_NEAR(result.horizon, 8.0, 1e-9);
  EXPECT_NEAR(result.energy_joules, 180.0 * 5.0 + 50.0 * 3.0, 1e-6);
}

TEST(ClusterSimulatorTest, WarmupJobsExcludedFromMetrics) {
  auto config = det_config(1);
  config.warmup_jobs = 1;
  auto result = simulate(config, {{0.0, simple_job(0, 1, 5.0)},
                                  {0.0, simple_job(0, 1, 5.0)}});
  EXPECT_EQ(result.per_class[0].completed, 1u);
}

TEST(ClusterSimulatorTest, ExponentialSingleClassMatchesMm1) {
  // Single slot, single-task exponential jobs: the cluster is an M/M/1
  // queue. Validate mean response against 1/(mu - lambda).
  const double mu = 1.0, lambda = 0.5;
  dias::Rng arrivals(99);
  std::vector<TraceEntry> trace;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += arrivals.exponential(lambda);
    trace.push_back({t, simple_job(0, 1, 1.0 / mu)});
  }
  auto config = det_config(1);
  config.task_time_family = TaskTimeFamily::kExponential;
  config.warmup_jobs = 2000;
  config.seed = 5;
  auto result = simulate(config, std::move(trace));
  EXPECT_NEAR(result.per_class[0].response.mean(), 1.0 / (mu - lambda), 0.12);
  EXPECT_NEAR(result.utilization(), lambda / mu, 0.02);
}

TEST(ClusterSimulatorTest, SprintWithEvictionKeepsBudgetConsistent) {
  // A sprinting low-priority job gets evicted mid-sprint; the budget and
  // speed state must reset so the high job runs correctly.
  auto config = det_config(1);
  config.scheduler.preemptive = true;
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {0.0, 0.0};
  config.sprint.budget_joules = std::numeric_limits<double>::infinity();
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)},
                                  {2.0, simple_job(1, 1, 8.0)}});
  // High: sprinted 8/2 = 4s -> response 4. Low: evicted at 2, re-runs
  // sprinted at 6 for 10s -> done 16, response 16.
  EXPECT_NEAR(result.per_class[1].response.mean(), 4.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].response.mean(), 16.0, 1e-9);
  EXPECT_EQ(result.total_evictions, 1u);
}

TEST(ClusterSimulatorTest, HeterogeneousSlotsRunAtTheirSpeed) {
  // 2 slots at speeds {2.0, 1.0}; two 10 s tasks: the fast slot is claimed
  // first (5 s), the slow one takes 10 s -> makespan 10 s.
  auto config = det_config(2);
  config.slot_speed_factors = {2.0, 1.0};
  auto result = simulate(config, {{0.0, simple_job(0, 2, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 10.0, 1e-9);
}

TEST(ClusterSimulatorTest, FastSlotPipelinesMoreTasks) {
  // 3 tasks of 10 s on the same 2 slots: fast slot does tasks 1 (0-5) and
  // 3 (5-10); slow slot does task 2 (0-10) -> makespan 10 s, vs 20 s on a
  // homogeneous 1x pair.
  auto config = det_config(2);
  config.slot_speed_factors = {2.0, 1.0};
  auto result = simulate(config, {{0.0, simple_job(0, 3, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 10.0, 1e-9);
  auto homogeneous = det_config(2);
  auto base = simulate(homogeneous, {{0.0, simple_job(0, 3, 10.0)}});
  EXPECT_NEAR(base.per_class[0].execution.mean(), 20.0, 1e-9);
}

TEST(ClusterSimulatorTest, SlotFactorsInteractWithSprinting) {
  // One task on a 0.5x slot with a 2x sprint from dispatch: speeds multiply.
  auto config = det_config(1);
  config.slot_speed_factors = {0.5};
  config.sprint.enabled = true;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {0.0};
  auto result = simulate(config, {{0.0, simple_job(0, 1, 10.0)}});
  EXPECT_NEAR(result.per_class[0].execution.mean(), 10.0, 1e-9);  // 0.5 * 2 = 1
}

TEST(ClusterSimulatorTest, SlotFactorValidation) {
  auto config = det_config(2);
  config.slot_speed_factors = {1.0};  // wrong size
  EXPECT_THROW(simulate(config, {{0.0, simple_job(0, 1, 1.0)}}),
               dias::precondition_error);
  config.slot_speed_factors = {1.0, 0.0};
  EXPECT_THROW(simulate(config, {{0.0, simple_job(0, 1, 1.0)}}),
               dias::precondition_error);
}

TEST(ClusterSimulatorTest, WeightedFairInterleavesClasses) {
  // Strict priority would run all queued high jobs before any low job;
  // 1:1 weights must alternate them.
  auto config = det_config(1);
  config.scheduler.queue_policy = QueuePolicy::kWeightedFair;
  config.scheduler.fair_weights = {1.0, 1.0};
  std::vector<TraceEntry> trace;
  for (int i = 0; i < 3; ++i) trace.push_back({0.0, simple_job(0, 1, 10.0)});
  for (int i = 0; i < 3; ++i) trace.push_back({0.1, simple_job(1, 1, 10.0)});
  auto result = simulate(config, std::move(trace));
  // Under strict priority the last low job would finish at 60 with mean low
  // completion ~ (10+50+60)/3; with fair 1:1 the classes alternate, so the
  // low class's mean response is well below the strict-priority value.
  const double low_mean = result.per_class[0].response.mean();
  const double high_mean = result.per_class[1].response.mean();
  EXPECT_LT(std::abs(low_mean - high_mean), 12.0)
      << "1:1 fair sharing should roughly equalize the classes";
}

TEST(ClusterSimulatorTest, FairWeightsSkewService) {
  // 9:1 weights: the high class gets ~9 of every 10 dispatches.
  auto config = det_config(1);
  config.scheduler.queue_policy = QueuePolicy::kWeightedFair;
  config.scheduler.fair_weights = {1.0, 9.0};
  std::vector<TraceEntry> trace;
  for (int i = 0; i < 20; ++i) trace.push_back({0.0, simple_job(0, 1, 5.0)});
  for (int i = 0; i < 20; ++i) trace.push_back({0.1, simple_job(1, 1, 5.0)});
  auto result = simulate(config, std::move(trace));
  EXPECT_LT(result.per_class[1].response.mean(), result.per_class[0].response.mean());
  // But unlike strict priority, low jobs do get served before the high
  // queue drains completely (no starvation): the first low completion is
  // well before the last high completion.
  EXPECT_LT(result.per_class[0].response.min(), result.per_class[1].response.max());
}

TEST(ClusterSimulatorTest, StragglerInjectionInflatesTasks) {
  auto config = det_config(4);
  config.stragglers.probability = 1.0;  // every task straggles
  config.stragglers.slowdown = 3.0;
  auto result = simulate(config, {{0.0, simple_job(0, 4, 2.0)}});
  EXPECT_EQ(result.straggler_tasks, 4u);
  EXPECT_NEAR(result.per_class[0].execution.mean(), 6.0, 1e-9);  // 2 s * 3
}

TEST(ClusterSimulatorTest, SpeculationCutsStragglerTail) {
  // Statistical invariant: with straggler injection, speculation launches
  // backup copies and shortens execution relative to no mitigation.
  auto base = det_config(4);
  base.stragglers.probability = 0.3;
  base.stragglers.slowdown = 8.0;
  base.stragglers.mitigation = StragglerConfig::Mitigation::kNone;
  base.seed = 9;
  auto spec_many = simple_job(0, 40, 2.0);
  const auto without = simulate(base, {{0.0, spec_many}});
  auto with_spec = base;
  with_spec.stragglers.mitigation = StragglerConfig::Mitigation::kSpeculate;
  const auto with = simulate(with_spec, {{0.0, spec_many}});
  EXPECT_GT(with.speculative_copies, 0u);
  EXPECT_LT(with.per_class[0].execution.mean(), without.per_class[0].execution.mean());
}

TEST(ClusterSimulatorTest, TailDropAbandonsStageTail) {
  // 10 deterministic tasks on 4 slots, tail_drop_ratio 0.2 -> once <= 2
  // tasks remain in flight with nothing pending, they are abandoned.
  auto config = det_config(4);
  config.stragglers.mitigation = StragglerConfig::Mitigation::kDropTail;
  config.stragglers.tail_drop_ratio = 0.2;
  auto result = simulate(config, {{0.0, simple_job(0, 10, 2.0)}});
  // Waves: 4 + 4 done at t=4; last wave of 2 starts, pending empty,
  // 2 <= ceil(0.2*10) -> dropped immediately at t=4.
  EXPECT_NEAR(result.per_class[0].execution.mean(), 4.0, 1e-9);
  EXPECT_EQ(result.tail_dropped_tasks, 2u);
}

TEST(ClusterSimulatorTest, TailDropSkipsNonDroppableStages) {
  auto config = det_config(4);
  config.stragglers.mitigation = StragglerConfig::Mitigation::kDropTail;
  config.stragglers.tail_drop_ratio = 0.5;
  JobSpec spec;
  spec.priority = 0;
  spec.stages = {{StageKind::kSetup, 1, 3.0, 0.0}};
  auto result = simulate(config, {{0.0, spec}});
  EXPECT_EQ(result.tail_dropped_tasks, 0u);
  EXPECT_NEAR(result.per_class[0].execution.mean(), 3.0, 1e-9);
}

TEST(ClusterSimulatorTest, ResumeEvictionKeepsCompletedTasks) {
  // Low job: 4 tasks x 10 s on 2 slots (2 waves, 20 s). High job (5 s)
  // arrives at t=12: wave 1 (2 tasks) completed at t=10; wave 2 in flight
  // for 2 s. Resume mode loses only those 2x2 s of partial work.
  auto config = det_config(2);
  config.scheduler.preemptive = true;
  config.scheduler.eviction = EvictionMode::kResumeTasks;
  auto result = simulate(config, {{0.0, simple_job(0, 4, 10.0)},
                                  {12.0, simple_job(1, 1, 5.0)}});
  // High: runs 12-17. Low resumes wave 2 at 17, finishes at 27.
  EXPECT_NEAR(result.per_class[1].response.mean(), 5.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].response.mean(), 27.0, 1e-9);
  EXPECT_NEAR(result.wasted_time, 2.0, 1e-9);  // longest in-flight progress
  EXPECT_NEAR(result.per_class[0].execution.mean(), 20.0, 1e-9);  // useful work
  EXPECT_EQ(result.total_evictions, 1u);
}

TEST(ClusterSimulatorTest, RestartEvictionLosesEverything) {
  auto config = det_config(2);
  config.scheduler.preemptive = true;
  config.scheduler.eviction = EvictionMode::kRestart;
  auto result = simulate(config, {{0.0, simple_job(0, 4, 10.0)},
                                  {12.0, simple_job(1, 1, 5.0)}});
  // Low restarts at 17 from scratch: finishes at 37; 12 s wasted.
  EXPECT_NEAR(result.per_class[0].response.mean(), 37.0, 1e-9);
  EXPECT_NEAR(result.wasted_time, 12.0, 1e-9);
  EXPECT_NEAR(result.per_class[0].execution.mean(), 20.0, 1e-9);
}

TEST(ClusterSimulatorTest, ResumeWastesLessThanRestartOnRandomTraces) {
  dias::Rng rng(77);
  std::vector<TraceEntry> trace;
  double t = 0.0;
  for (int i = 0; i < 400; ++i) {
    t += rng.exponential(0.05);
    const std::size_t cls = rng.bernoulli(0.3) ? 1 : 0;
    trace.push_back({t, simple_job(cls, 1 + static_cast<int>(rng.uniform_int(8)),
                                   rng.uniform(1.0, 4.0))});
  }
  auto config = det_config(4);
  config.scheduler.preemptive = true;
  config.task_time_family = TaskTimeFamily::kLogNormal;
  config.seed = 78;
  config.scheduler.eviction = EvictionMode::kRestart;
  const auto restart = simulate(config, trace);
  config.scheduler.eviction = EvictionMode::kResumeTasks;
  const auto resume = simulate(config, trace);
  EXPECT_GT(restart.wasted_time, resume.wasted_time);
  // Resume never hurts low-priority latency relative to restart.
  EXPECT_LE(resume.per_class[0].response.mean(),
            restart.per_class[0].response.mean() + 1e-9);
}

TEST(ClusterSimulatorTest, DrainPressureSprintsTheBlocker) {
  // Low job (20 s) is running; a high job arrives at t=5. Under the
  // drain-pressure policy the low job sprints (speedup 2): 15 s of work
  // finishes in 7.5 s, so the high job starts at 12.5 instead of 20.
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.policy = SprintPolicy::kDrainPressure;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {};  // no class sprints on its own
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)},
                                  {5.0, simple_job(1, 1, 4.0)}});
  EXPECT_NEAR(result.per_class[0].response.mean(), 12.5, 1e-9);
  EXPECT_NEAR(result.per_class[1].response.mean(), 12.5 - 5.0 + 4.0, 1e-9);
  EXPECT_NEAR(result.sprint_time, 7.5, 1e-9);
}

TEST(ClusterSimulatorTest, TimeoutPolicyIgnoresPressure) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.policy = SprintPolicy::kTimeout;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {};  // nothing sprints
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)},
                                  {5.0, simple_job(1, 1, 4.0)}});
  EXPECT_NEAR(result.per_class[0].response.mean(), 20.0, 1e-9);
  EXPECT_NEAR(result.per_class[1].response.mean(), 19.0, 1e-9);
}

TEST(ClusterSimulatorTest, DrainPressureRespectsBudget) {
  auto config = det_config(1);
  config.sprint.enabled = true;
  config.sprint.policy = SprintPolicy::kDrainPressure;
  config.sprint.speedup = 2.0;
  config.sprint.timeout_s = {};
  config.sprint.base_power_w = 100.0;
  config.sprint.sprint_power_w = 200.0;
  config.sprint.budget_joules = 0.0;  // empty budget: no sprint possible
  auto result = simulate(config, {{0.0, simple_job(0, 1, 20.0)},
                                  {5.0, simple_job(1, 1, 4.0)}});
  EXPECT_NEAR(result.per_class[0].response.mean(), 20.0, 1e-9);
  EXPECT_NEAR(result.sprint_time, 0.0, 1e-9);
}

class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, InvariantsHoldOnRandomTraces) {
  // Property sweep: random two-class traces; check conservation-style
  // invariants of the simulator output.
  dias::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<TraceEntry> trace;
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    t += rng.exponential(0.05);
    const std::size_t cls = rng.bernoulli(0.3) ? 1 : 0;
    trace.push_back({t, simple_job(cls, 1 + static_cast<int>(rng.uniform_int(10)),
                                   rng.uniform(0.5, 3.0))});
  }
  ClusterSimulator::Config config;
  config.slots = 4;
  config.scheduler.preemptive = GetParam() % 2 == 0;
  config.task_time_family = TaskTimeFamily::kLogNormal;
  config.warmup_jobs = 0;
  config.seed = static_cast<std::uint64_t>(GetParam());
  auto result = simulate(config, std::move(trace));

  std::size_t completed = 0;
  for (const auto& m : result.per_class) {
    completed += m.completed;
    for (double r : m.response.values()) EXPECT_GT(r, 0.0);
    if (m.completed > 0) {
      EXPECT_GE(m.response.mean(), m.execution.mean() - 1e-9);
      EXPECT_GE(m.queueing.min(), -1e-9);
    }
  }
  EXPECT_EQ(completed, 300u);  // every job eventually completes
  EXPECT_GE(result.busy_time, result.wasted_time - 1e-9);
  EXPECT_LE(result.busy_time, result.horizon + 1e-9);
  if (!config.scheduler.preemptive) {
    EXPECT_EQ(result.total_evictions, 0u);
    EXPECT_DOUBLE_EQ(result.wasted_time, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Range(1, 13));

class EnergyAccountingSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnergyAccountingSweep, EnergyIdentityHoldsAcrossConfigs) {
  // Property: for random configurations (sprinting, stragglers, eviction,
  // idle power), the reported energy always decomposes into
  //   base_power * (busy - sprint) + sprint_power * sprint + idle * idle
  // and sprint time never exceeds busy time.
  dias::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<TraceEntry> trace;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(0.03);
    trace.push_back({t, simple_job(rng.bernoulli(0.3) ? 1 : 0,
                                   1 + static_cast<int>(rng.uniform_int(6)),
                                   rng.uniform(0.5, 4.0))});
  }
  ClusterSimulator::Config config;
  config.slots = 1 + static_cast<int>(rng.uniform_int(6));
  config.scheduler.preemptive = rng.bernoulli(0.5);
  config.scheduler.eviction =
      rng.bernoulli(0.5) ? EvictionMode::kRestart : EvictionMode::kResumeTasks;
  config.sprint.enabled = rng.bernoulli(0.7);
  config.sprint.speedup = rng.uniform(1.2, 3.0);
  config.sprint.base_power_w = 180.0;
  config.sprint.sprint_power_w = 270.0;
  config.sprint.budget_joules = rng.bernoulli(0.5)
                                    ? rng.uniform(500.0, 5000.0)
                                    : std::numeric_limits<double>::infinity();
  config.sprint.timeout_s = {rng.uniform(0.0, 5.0), 0.0};
  config.idle_power_w = rng.uniform(0.0, 60.0);
  config.stragglers.probability = rng.uniform(0.0, 0.2);
  config.stragglers.slowdown = 3.0;
  config.task_time_family = TaskTimeFamily::kLogNormal;
  config.warmup_jobs = 0;
  config.seed = static_cast<std::uint64_t>(GetParam());
  const auto result = simulate(config, std::move(trace));

  EXPECT_GE(result.sprint_time, 0.0);
  EXPECT_LE(result.sprint_time, result.busy_time + 1e-6);
  const double expected =
      config.sprint.base_power_w * (result.busy_time - result.sprint_time) +
      config.sprint.sprint_power_w * result.sprint_time +
      config.idle_power_w * (result.horizon - result.busy_time);
  EXPECT_NEAR(result.energy_joules, expected, 1e-6 * std::max(1.0, expected));
  EXPECT_LE(result.busy_time, result.horizon + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyAccountingSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace dias::cluster
