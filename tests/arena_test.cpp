// SegmentArena lifecycle battery (ISSUE 9).
//
// The arena's contract has three load-bearing clauses, each pinned here:
//   * epoch discipline — reset() recycles every chunk, bumps the epoch,
//     and (in Debug) scribbles recycled memory so stale segment reads
//     fail loudly instead of returning previous-epoch bytes. Under the
//     asan CI leg recycled chunks are re-poisoned, so ANY use of a
//     segment that outlived its epoch is a hard stop, not a flake.
//   * allocator semantics — ArenaAllocator with a null arena is the
//     global heap (default-constructed segments in tests keep working);
//     equality is by arena identity, which is what makes the
//     get_allocator()-preserving swap in ShuffleSink::release_entries
//     well-defined.
//   * determinism — arena on/off must not change a single result bit,
//     checked through the Engine over randomized stage sequences (the
//     property leg), with the engine's own arena telemetry proving the
//     arenas actually cycled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "engine/arena.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {
namespace {

using detail::ArenaAllocator;
using detail::ArenaVector;
using detail::SegmentArena;

TEST(SegmentArenaTest, BumpAllocationStaysInsideOneChunk) {
  SegmentArena arena(/*chunk_bytes=*/1024);
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.chunk_count(), 1u);
  // Bump pointers advance monotonically within the chunk.
  EXPECT_GT(static_cast<std::byte*>(b), static_cast<std::byte*>(a));
  EXPECT_GE(arena.used_bytes(), 200u);
  arena.deallocate(a, 100);
  arena.deallocate(b, 100);
}

TEST(SegmentArenaTest, AlignmentIsRespected) {
  SegmentArena arena(/*chunk_bytes=*/4096);
  for (const std::size_t align : {std::size_t{8}, std::size_t{16}, std::size_t{64}}) {
    arena.allocate(3, 8);  // misalign the bump offset
    void* p = arena.allocate(32, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << "align " << align;
  }
  arena.reset();
}

TEST(SegmentArenaTest, ResetRecyclesChunksAndBumpsEpoch) {
  SegmentArena arena(/*chunk_bytes=*/1024);  // ctor floor: smaller is clamped up
  EXPECT_EQ(arena.epoch(), 0u);
  // Force several chunks in epoch 0 (two 400-byte allocations per chunk).
  for (int i = 0; i < 8; ++i) arena.allocate(400, 8);
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GE(chunks, 4u);
  const std::size_t reserved = arena.reserved_bytes();

  arena.reset();
  EXPECT_EQ(arena.epoch(), 1u);
  EXPECT_EQ(arena.recycled_chunks(), chunks);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Chunks are recycled, not freed: same capacity, no new reservation
  // when the next epoch allocates the same footprint.
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  for (int i = 0; i < 8; ++i) arena.allocate(400, 8);
  EXPECT_EQ(arena.chunk_count(), chunks);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  arena.reset();
  EXPECT_EQ(arena.recycled_chunks(), 2 * chunks);
}

TEST(SegmentArenaTest, UntouchedChunksAreNotCountedRecycled) {
  SegmentArena arena(/*chunk_bytes=*/512);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 1u);
  EXPECT_EQ(arena.recycled_chunks(), 0u);  // nothing was ever allocated
}

TEST(SegmentArenaTest, OversizeAllocationGetsDedicatedChunk) {
  SegmentArena arena(/*chunk_bytes=*/256);
  void* small = arena.allocate(64, 8);
  void* big = arena.allocate(10 * 1024, 8);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.oversize_allocs(), 1u);
  EXPECT_GE(arena.reserved_bytes(), 10 * 1024u);
  // The oversize chunk is recycled like any other.
  arena.reset();
  EXPECT_GE(arena.recycled_chunks(), 2u);
}

#ifndef NDEBUG
TEST(SegmentArenaTest, RecycledMemoryIsScribbledNotStale) {
  SegmentArena arena(/*chunk_bytes=*/512);
  auto* p = static_cast<unsigned char*>(arena.allocate(64, 8));
  std::memset(p, 0x5A, 64);
  arena.deallocate(p, 64);
  arena.reset();
  // Same chunk, same offset — but the bytes must be the debug scribble,
  // never the previous epoch's 0x5A payload.
  auto* q = static_cast<unsigned char*>(arena.allocate(64, 8));
  ASSERT_EQ(q, p);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(q[i], 0xAB) << "offset " << i;
}
#endif

TEST(ArenaAllocatorTest, NullArenaIsTheHeap) {
  ArenaVector<int> v;  // default allocator: arena == nullptr
  v.assign({1, 2, 3});
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  EXPECT_EQ(v[2], 3);
}

TEST(ArenaAllocatorTest, EqualityIsArenaIdentity) {
  SegmentArena a;
  SegmentArena b;
  EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
  EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>());
  // Rebound copies keep the arena.
  ArenaAllocator<long> rebound{ArenaAllocator<int>(&a)};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaAllocatorTest, VectorGrowthAndMoveStayInsideArena) {
  SegmentArena arena;
  {
    ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(&arena)};
    for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
    // Move propagates the allocator (POCMA), so the target frees into the
    // arena too — no cross-allocator UB.
    ArenaVector<std::uint64_t> w = std::move(v);
    ASSERT_EQ(w.size(), 1000u);
    EXPECT_EQ(w.get_allocator().arena(), &arena);
    EXPECT_EQ(w[999], 999u);
  }
  EXPECT_GT(arena.used_bytes(), 1000 * sizeof(std::uint64_t) - 1);
  arena.reset();
}

// Randomized stage-sequence property: a random mix of shuffle stages
// (varying sizes, partition counts, buffer budgets) run twice — arena on
// vs arena off — must produce bitwise identical results on every stage,
// and the engine's arena telemetry must show the chunks actually cycling
// (one epoch per shuffle, recycled counts growing). Under the asan leg
// this doubles as the use-after-recycle detector: any segment read after
// its epoch ended hits poisoned memory.
TEST(ArenaEngineTest, RandomizedStageSequencesBitIdenticalArenaOnVsOff) {
  Rng rng(2024);
  struct StageSpec {
    std::size_t records;
    std::size_t in_parts;
    std::size_t out_parts;
    std::size_t buffer_bytes;
  };
  std::vector<StageSpec> stages;
  for (int i = 0; i < 10; ++i) {
    stages.push_back({500 + rng.uniform_int(3000), 1 + rng.uniform_int(8),
                      1 + rng.uniform_int(12), 256u << rng.uniform_int(6)});
  }

  const auto run = [&](bool arena, obs::Registry* registry) {
    Engine::Options o;
    o.workers = 4;
    o.seed = 321;
    o.shuffle_arena = arena;
    Engine eng(o);
    if (registry != nullptr) eng.attach_observability(registry, nullptr);
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> results;
    std::uint64_t seed = 50;
    for (const StageSpec& spec : stages) {
      Rng data_rng(++seed);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> records(spec.records);
      for (auto& [k, v] : records) {
        k = data_rng.uniform_int(200);
        v = data_rng.uniform_int(1000);
      }
      ShuffleOptions shuffle;
      shuffle.target_buffer_bytes = spec.buffer_bytes;
      const auto ds = eng.parallelize(records, spec.in_parts);
      const auto out = eng.reduce_by_key(
          ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, spec.out_parts,
          {}, shuffle);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> flat;
      for (std::size_t p = 0; p < out.partitions(); ++p) {
        const auto& part = out.partition(p);
        flat.insert(flat.end(), part.begin(), part.end());
      }
      std::sort(flat.begin(), flat.end());
      results.push_back(std::move(flat));
    }
    if (registry != nullptr) eng.attach_observability(nullptr, nullptr);
    return results;
  };

  obs::Registry registry;
  const auto with_arena = run(true, &registry);
  const auto without_arena = run(false, nullptr);
  ASSERT_EQ(with_arena.size(), without_arena.size());
  for (std::size_t i = 0; i < with_arena.size(); ++i) {
    EXPECT_EQ(with_arena[i], without_arena[i]) << "stage " << i;
  }

  // The arenas really cycled: chunks were reserved and recycled at least
  // once per shuffle after the first.
  const obs::Gauge* chunks = registry.find_gauge("engine.shuffle.arena_chunks");
  ASSERT_NE(chunks, nullptr);
  EXPECT_GT(chunks->value(), 0.0);
  EXPECT_GE(registry.counter("engine.shuffle.arena_recycled_chunks").value(),
            stages.size() - 1);
}

}  // namespace
}  // namespace dias::engine
