#include "model/priority_queue_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "model/mg1_priority.hpp"
#include "model/qbd.hpp"

namespace dias::model {
namespace {

PriorityQueueSimOptions fast_options(std::uint64_t seed = 1) {
  PriorityQueueSimOptions o;
  o.jobs = 60000;
  o.warmup = 6000;
  o.seed = seed;
  return o;
}

TEST(PriorityQueueSimTest, Mm1MatchesClosedForm) {
  const auto arrivals = Mmap::marked_poisson({0.6});
  const std::vector<PhaseType> services{PhaseType::exponential(1.0)};
  const auto result = simulate_priority_queue(arrivals, services,
                                              SimDiscipline::kNonPreemptive, fast_options());
  ASSERT_FALSE(result.truncated);
  EXPECT_NEAR(result.response[0].mean(), 1.0 / (1.0 - 0.6), 0.1);
  EXPECT_NEAR(result.waiting[0].mean(), 0.6 / (1.0 - 0.6), 0.1);
  EXPECT_NEAR(result.utilization(), 0.6, 0.02);
}

TEST(PriorityQueueSimTest, MatchesNonPreemptiveMva) {
  const auto arrivals = Mmap::marked_poisson({0.3, 0.2});
  const std::vector<PhaseType> services{PhaseType::erlang(2, 2.0),
                                        PhaseType::exponential(2.0)};
  const std::vector<PriorityClassInput> inputs{make_class_input(0.3, services[0]),
                                               make_class_input(0.2, services[1])};
  const auto mva = Mg1PriorityQueue::non_preemptive(inputs);
  const auto sim = simulate_priority_queue(arrivals, services,
                                           SimDiscipline::kNonPreemptive, fast_options(2));
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(sim.response[k].mean(), mva[k].mean_response,
                0.05 * mva[k].mean_response)
        << "class " << k;
  }
}

TEST(PriorityQueueSimTest, MatchesPreemptiveResumeMva) {
  const auto arrivals = Mmap::marked_poisson({0.3, 0.2});
  const std::vector<PhaseType> services{PhaseType::exponential(1.0),
                                        PhaseType::exponential(2.0)};
  const std::vector<PriorityClassInput> inputs{make_class_input(0.3, services[0]),
                                               make_class_input(0.2, services[1])};
  const auto mva = Mg1PriorityQueue::preemptive_resume(inputs);
  const auto sim = simulate_priority_queue(arrivals, services,
                                           SimDiscipline::kPreemptiveResume, fast_options(3));
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(sim.response[k].mean(), mva[k].mean_response,
                0.06 * mva[k].mean_response)
        << "class " << k;
  }
}

TEST(PriorityQueueSimTest, HighClassSeesPureMm1UnderPreemption) {
  const auto arrivals = Mmap::marked_poisson({0.4, 0.3});
  const std::vector<PhaseType> services{PhaseType::exponential(1.0),
                                        PhaseType::exponential(1.0)};
  for (auto d : {SimDiscipline::kPreemptiveResume, SimDiscipline::kPreemptiveRepeatIdentical,
                 SimDiscipline::kPreemptiveRepeatResample}) {
    const auto sim = simulate_priority_queue(arrivals, services, d, fast_options(4));
    EXPECT_NEAR(sim.response[1].mean(), 1.0 / (1.0 - 0.3), 0.12)
        << "discipline " << static_cast<int>(d);
  }
}

TEST(PriorityQueueSimTest, RepeatCostsMoreThanResume) {
  const auto arrivals = Mmap::marked_poisson({0.25, 0.25});
  const std::vector<PhaseType> services{PhaseType::erlang(2, 2.0),
                                        PhaseType::exponential(2.0)};
  const auto resume = simulate_priority_queue(arrivals, services,
                                              SimDiscipline::kPreemptiveResume,
                                              fast_options(5));
  const auto repeat = simulate_priority_queue(arrivals, services,
                                              SimDiscipline::kPreemptiveRepeatIdentical,
                                              fast_options(5));
  EXPECT_GT(repeat.response[0].mean(), resume.response[0].mean());
}

TEST(PriorityQueueSimTest, RepeatInstabilityTriggersSafetyValve) {
  // Long low-priority jobs + frequent high-priority interrupts: the repeat
  // discipline cannot finish the low job (Jelenkovic's instability). The
  // backlog valve must fire instead of hanging.
  const auto arrivals = Mmap::marked_poisson({0.05, 0.8});
  const std::vector<PhaseType> services{PhaseType::erlang(4, 0.2),  // mean 20s
                                        PhaseType::exponential(2.0)};
  PriorityQueueSimOptions options = fast_options(6);
  options.jobs = 200000;
  options.warmup = 100;
  options.max_backlog = 2000;
  const auto result = simulate_priority_queue(
      arrivals, services, SimDiscipline::kPreemptiveRepeatIdentical, options);
  EXPECT_TRUE(result.truncated);
  // Resampling restores stability (some attempt eventually draws short work).
  const auto resample = simulate_priority_queue(
      arrivals, services, SimDiscipline::kPreemptiveRepeatResample, options);
  EXPECT_GT(resample.response[1].count(), 1000u);
}

TEST(PriorityQueueSimTest, BurstyArrivalsIncreaseWaiting) {
  // Same rates, bursty MMPP vs Poisson: waiting must grow.
  const std::vector<PhaseType> services{PhaseType::exponential(1.0)};
  const auto poisson = Mmap::marked_poisson({0.6});
  const auto bursty = Mmap::mmpp2({{1.2}, {0.0001}}, 0.01, 0.01);
  const auto base = simulate_priority_queue(poisson, services,
                                            SimDiscipline::kNonPreemptive, fast_options(7));
  const auto burst = simulate_priority_queue(bursty, services,
                                             SimDiscipline::kNonPreemptive, fast_options(7));
  EXPECT_GT(burst.waiting[0].mean(), 1.5 * base.waiting[0].mean());
}

TEST(PriorityQueueSimTest, WaitingTimeDistributionMatchesPhForm) {
  // Single class: the empirical waiting CDF must match the closed-form PH
  // waiting-time distribution from mg1_waiting_time.
  const double lambda = 0.5;
  const auto service = PhaseType::erlang(3, 3.0);
  const auto arrivals = Mmap::marked_poisson({lambda});
  const std::vector<PhaseType> services{service};
  PriorityQueueSimOptions options = fast_options(8);
  options.jobs = 150000;
  options.warmup = 15000;
  const auto sim = simulate_priority_queue(arrivals, services,
                                           SimDiscipline::kNonPreemptive, options);
  const auto w = mg1_waiting_time(lambda, service);
  EXPECT_NEAR(sim.waiting[0].mean(), w.mean(), 0.05 * w.mean());
  for (double q : {0.5, 0.9, 0.95}) {
    // Invert empirically: CDF at the empirical quantile must be ~q.
    const double x = sim.waiting[0].quantile(q);
    EXPECT_NEAR(w.cdf(x), q, 0.02) << "quantile " << q;
  }
}

TEST(PriorityQueueSimTest, Validation) {
  const auto arrivals = Mmap::marked_poisson({0.5, 0.5});
  const std::vector<PhaseType> one{PhaseType::exponential(1.0)};
  EXPECT_THROW(simulate_priority_queue(arrivals, one, SimDiscipline::kNonPreemptive,
                                       fast_options()),
               dias::precondition_error);
  PriorityQueueSimOptions bad;
  bad.jobs = 10;
  bad.warmup = 20;
  const std::vector<PhaseType> two{PhaseType::exponential(1.0), PhaseType::exponential(1.0)};
  EXPECT_THROW(simulate_priority_queue(arrivals, two, SimDiscipline::kNonPreemptive, bad),
               dias::precondition_error);
}

class DisciplineSweep : public ::testing::TestWithParam<int> {};

TEST_P(DisciplineSweep, UtilizationAndOrderingInvariants) {
  const auto discipline = static_cast<SimDiscipline>(GetParam());
  const auto arrivals = Mmap::marked_poisson({0.25, 0.2});
  const std::vector<PhaseType> services{PhaseType::erlang(2, 2.0),
                                        PhaseType::exponential(2.0)};
  auto options = fast_options(10 + static_cast<std::uint64_t>(GetParam()));
  options.jobs = 30000;
  options.warmup = 3000;
  const auto result = simulate_priority_queue(arrivals, services, discipline, options);
  ASSERT_FALSE(result.truncated);
  // High class never waits longer than the low class on average.
  EXPECT_LE(result.waiting[1].mean(), result.waiting[0].mean() + 1e-9);
  // Responses exceed waits; utilization is sane.
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_GE(result.response[k].mean(), result.waiting[k].mean());
  }
  EXPECT_GT(result.utilization(), 0.2);
  EXPECT_LT(result.utilization(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Disciplines, DisciplineSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace dias::model
