// Unit and property tests for runtime::AdaptivePlanner (ISSUE 8).
//
// The planner's contract has three parts, each pinned here:
//   1. knob semantics — each smoothed signal drives exactly one knob
//      through a two-sided band, and traits mask knobs the stage forbids;
//   2. stability — min-hold plus the bands mean an input oscillating
//      around a threshold flips a knob at most once per hold window (the
//      flap regression of the ISSUE satellite list);
//   3. determinism — decide() is a pure function of the snapshot sequence
//      (fixed stream => fixed plan sequence), and every emitted plan is a
//      member of reachable_plans(), which the determinism battery sweeps.
#include "runtime/adaptive_planner.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::runtime {
namespace {

using engine::StagePlan;
using engine::StageTraits;

AdaptivePlannerConfig test_config() {
  AdaptivePlannerConfig cfg;
  cfg.workers = 4;
  cfg.ewma_alpha = 1.0;  // no smoothing: thresholds act on raw samples
  cfg.min_hold_decisions = 1;
  cfg.small_shuffle_low_bytes = 1000;
  cfg.small_shuffle_high_bytes = 4000;
  // One output bucket per 50 kB of shipped data; the default snap() volume
  // of 2000 bytes quantizes to width 1.
  cfg.target_partition_bytes = 50000;
  cfg.spill_budget_bytes = 0;
  return cfg;
}

StageTraits open_traits() {
  StageTraits t;
  t.name = "stage";
  t.default_partitions = 4;
  t.order_insensitive = true;
  return t;
}

// Snapshot helper: `collapse` sets records_out/records_in, `bytes` the
// shuffle volume; tail/skew/spill default to neutral.
PlannerMetricSnapshot snap(double collapse, std::uint64_t bytes = 2000) {
  PlannerMetricSnapshot s;
  s.shuffle_records_in = 1000;
  s.shuffle_records_out = static_cast<std::uint64_t>(collapse * 1000.0);
  s.shuffle_bytes = bytes;
  return s;
}

TEST(AdaptivePlannerTest, NoSignalsMeansIdentityPlan) {
  AdaptivePlanner planner(nullptr, test_config());
  const StagePlan plan = planner.plan_for(open_traits());
  EXPECT_TRUE(plan.is_identity()) << plan.summary();
}

TEST(AdaptivePlannerTest, CombinerFollowsCollapseRatioWithDeadBand) {
  AdaptivePlanner planner(nullptr, test_config());
  const StageTraits traits = open_traits();
  // Strong collapse: combiner pays.
  EXPECT_EQ(planner.decide(snap(0.1), traits).combine, std::optional<bool>(true));
  // Dead band between enable (0.5) and disable (0.75): keep the decision.
  EXPECT_EQ(planner.decide(snap(0.6), traits).combine, std::optional<bool>(true));
  // No collapse: combiner is overhead.
  EXPECT_EQ(planner.decide(snap(0.95), traits).combine, std::optional<bool>(false));
  // Dead band again: stays off.
  EXPECT_EQ(planner.decide(snap(0.6), traits).combine, std::optional<bool>(false));
}

TEST(AdaptivePlannerTest, OrderSensitiveStageNeverGetsCombinerKnob) {
  AdaptivePlanner planner(nullptr, test_config());
  StageTraits traits = open_traits();
  traits.order_insensitive = false;  // e.g. a double sum
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(planner.decide(snap(0.05), traits).combine.has_value());
  }
}

TEST(AdaptivePlannerTest, SmallShufflesRouteSingleThreaded) {
  AdaptivePlanner planner(nullptr, test_config());
  const StageTraits traits = open_traits();
  EXPECT_TRUE(planner.decide(snap(0.7, 500), traits).single_thread);
  // Sticky inside the band...
  EXPECT_TRUE(planner.decide(snap(0.7, 2000), traits).single_thread);
  // ...and released above it.
  EXPECT_FALSE(planner.decide(snap(0.7, 50000), traits).single_thread);
}

TEST(AdaptivePlannerTest, SingleThreadMaskedByTraits) {
  AdaptivePlanner planner(nullptr, test_config());
  StageTraits traits = open_traits();
  traits.allow_single_thread = false;
  EXPECT_FALSE(planner.decide(snap(0.7, 10), traits).single_thread);
}

TEST(AdaptivePlannerTest, PartitionWidthTracksShippedVolumeTimesSkewRung) {
  AdaptivePlanner planner(nullptr, test_config());
  const StageTraits traits = open_traits();  // default width 4
  auto skewed = [](double skew, std::uint64_t bytes) {
    PlannerMetricSnapshot s = snap(0.7, bytes);
    s.merge_skew = skew;
    return s;
  };
  // 175 kB / 50 kB target = demand 3.5, quantized up to width 4 ==
  // default -> no override emitted. Mild skew sits on rung 1.0 and adds
  // nothing (the ladder rounds *down*, so 1.8 stays on rung 1 too).
  EXPECT_EQ(planner.decide(skewed(1.0, 175000), traits).partitions, 0u);
  EXPECT_EQ(planner.decide(skewed(1.8, 175000), traits).partitions, 0u);
  // Small shipped volume narrows below the default: demand 0.4 -> width 1
  // (still a parallel map side — 20 kB is above the single-thread band).
  EXPECT_EQ(planner.decide(skewed(1.0, 20000), traits).partitions, 1u);
  // Heavy skew multiplies the width: demand 3.5 * rung 4.0 -> 16.
  EXPECT_EQ(planner.decide(skewed(4.5, 175000), traits).partitions, 16u);
  // Middle rung: 3.5 * 2.0 -> 8 partitions.
  EXPECT_EQ(planner.decide(skewed(2.6, 175000), traits).partitions, 8u);
  // Repartition masked by traits.
  AdaptivePlanner masked(nullptr, test_config());
  StageTraits no_repart = open_traits();
  no_repart.allow_repartition = false;
  EXPECT_EQ(masked.decide(skewed(4.5, 175000), no_repart).partitions, 0u);
}

TEST(AdaptivePlannerTest, SpeculationFollowsTailRatio) {
  AdaptivePlanner planner(nullptr, test_config());
  const StageTraits traits = open_traits();
  auto tailed = [](double p50, double p95) {
    PlannerMetricSnapshot s;
    s.task_time_p50 = p50;
    s.task_time_p95 = p95;
    return s;
  };
  // Heavy tail (p95/p50 = 6 >= 4): speculate.
  EXPECT_EQ(planner.decide(tailed(0.1, 0.6), traits).speculate, std::optional<bool>(true));
  // Band interior (ratio 3): hold.
  EXPECT_EQ(planner.decide(tailed(0.1, 0.3), traits).speculate, std::optional<bool>(true));
  // Tight distribution (ratio 1.5 <= 2): stop speculating.
  EXPECT_EQ(planner.decide(tailed(0.1, 0.15), traits).speculate,
            std::optional<bool>(false));
  // Masked by traits.
  AdaptivePlanner masked(nullptr, test_config());
  StageTraits no_spec = open_traits();
  no_spec.allow_speculation = false;
  EXPECT_FALSE(masked.decide(tailed(0.1, 0.6), no_spec).speculate.has_value());
}

TEST(AdaptivePlannerTest, SpillHintNeedsBudgetAndObservedSpill) {
  // Budget 0 disables the knob outright.
  AdaptivePlanner off(nullptr, test_config());
  PlannerMetricSnapshot spilling = snap(0.7);
  spilling.spill_bytes = 1 << 20;
  EXPECT_FALSE(off.decide(spilling, open_traits()).spill_budget_bytes.has_value());

  AdaptivePlannerConfig cfg = test_config();
  cfg.spill_budget_bytes = 64 * 1024;
  AdaptivePlanner on(nullptr, cfg);
  EXPECT_EQ(on.decide(spilling, open_traits()).spill_budget_bytes,
            std::optional<std::size_t>(64 * 1024));
  // No spill activity: hint retracts.
  EXPECT_FALSE(on.decide(snap(0.7), open_traits()).spill_budget_bytes.has_value());
}

// Satellite: flap regression. A metric stream oscillating across both
// combiner thresholds every decision must not flip the knob more than once
// per min-hold window.
TEST(AdaptivePlannerTest, OscillatingSignalSwitchesAtMostOncePerHoldWindow) {
  AdaptivePlannerConfig cfg = test_config();
  cfg.min_hold_decisions = 5;
  AdaptivePlanner planner(nullptr, cfg);
  const StageTraits traits = open_traits();

  std::vector<std::size_t> switch_points;
  std::optional<bool> prev;
  constexpr std::size_t kDecisions = 60;
  for (std::size_t i = 0; i < kDecisions; ++i) {
    // Alternates 0.2 (below enable) / 1.0 (above disable) every call.
    const StagePlan plan = planner.decide(snap(i % 2 == 0 ? 0.2 : 1.0), traits);
    if (plan.combine != prev) switch_points.push_back(i);
    prev = plan.combine;
  }
  ASSERT_FALSE(switch_points.empty());  // the knob does engage
  for (std::size_t i = 1; i < switch_points.size(); ++i) {
    EXPECT_GE(switch_points[i] - switch_points[i - 1], cfg.min_hold_decisions)
        << "flapped between decisions " << switch_points[i - 1] << " and "
        << switch_points[i];
  }
  // And the global switch budget holds: at most one per window.
  EXPECT_LE(switch_points.size(), kDecisions / cfg.min_hold_decisions + 1);
}

// Determinism: identical snapshot streams yield identical plan sequences.
TEST(AdaptivePlannerTest, FixedSnapshotStreamYieldsFixedPlanSequence) {
  const auto run = [] {
    AdaptivePlannerConfig cfg = test_config();
    cfg.ewma_alpha = 0.4;
    cfg.min_hold_decisions = 3;
    cfg.spill_budget_bytes = 4096;
    AdaptivePlanner planner(nullptr, cfg);
    StageTraits traits = open_traits();
    Rng rng(2024);
    std::ostringstream seq;
    for (int i = 0; i < 200; ++i) {
      PlannerMetricSnapshot s;
      s.shuffle_records_in = 1000;
      s.shuffle_records_out = rng.uniform_int(1000) + 1;
      s.shuffle_bytes = rng.uniform_int(100000);
      s.spill_bytes = rng.uniform_int(3) == 0 ? rng.uniform_int(10000) : 0;
      s.merge_skew = 1.0 + rng.uniform() * 4.0;
      s.task_time_p50 = 0.01;
      s.task_time_p95 = 0.01 * (1.0 + rng.uniform() * 6.0);
      seq << planner.decide(s, traits).summary() << "\n";
    }
    return seq.str();
  };
  EXPECT_EQ(run(), run());
}

// Every plan decide() emits is a member of reachable_plans() — the closure
// the determinism battery sweeps. A plan outside the set would mean the
// battery proves nothing about live behaviour.
TEST(AdaptivePlannerTest, EmittedPlansAreAlwaysReachable) {
  AdaptivePlannerConfig cfg = test_config();
  cfg.ewma_alpha = 0.5;
  cfg.min_hold_decisions = 2;
  cfg.spill_budget_bytes = 32 * 1024;
  for (const bool order_insensitive : {true, false}) {
    StageTraits traits = open_traits();
    traits.order_insensitive = order_insensitive;
    std::set<std::string> reachable;
    for (const StagePlan& p : AdaptivePlanner::reachable_plans(cfg, traits)) {
      reachable.insert(p.summary());
    }
    AdaptivePlanner planner(nullptr, cfg);
    Rng rng(order_insensitive ? 7u : 8u);
    for (int i = 0; i < 500; ++i) {
      PlannerMetricSnapshot s;
      s.shuffle_records_in = rng.uniform_int(2) == 0 ? 0 : 1000;
      s.shuffle_records_out = rng.uniform_int(1001);
      s.shuffle_bytes = rng.uniform_int(200000);
      s.spill_bytes = rng.uniform_int(4) == 0 ? rng.uniform_int(100000) : 0;
      s.merge_skew = 1.0 + rng.uniform() * 5.0;
      s.task_time_p50 = rng.uniform_int(2) == 0 ? 0.0 : 0.01;
      s.task_time_p95 = 0.01 * (1.0 + rng.uniform() * 8.0);
      const StagePlan plan = planner.decide(s, traits);
      EXPECT_EQ(reachable.count(plan.summary()), 1u)
          << "unreachable plan emitted: " << plan.summary();
    }
  }
}

TEST(AdaptivePlannerTest, ReachablePlansRespectTraitMasks) {
  AdaptivePlannerConfig cfg = test_config();
  cfg.spill_budget_bytes = 1024;
  StageTraits locked;
  locked.name = "locked";
  locked.default_partitions = 4;
  locked.order_insensitive = false;
  locked.allow_repartition = false;
  locked.allow_single_thread = false;
  locked.allow_speculation = false;
  locked.allow_spill_hint = false;
  const auto plans = AdaptivePlanner::reachable_plans(cfg, locked);
  ASSERT_EQ(plans.size(), 1u);  // only the identity remains
  EXPECT_TRUE(plans[0].is_identity());

  const auto open = AdaptivePlanner::reachable_plans(cfg, open_traits());
  EXPECT_GT(open.size(), 10u);
  std::set<std::string> seen;
  for (const StagePlan& p : open) {
    EXPECT_TRUE(seen.insert(p.summary()).second) << "duplicate " << p.summary();
  }
}

// plan_for = observe + decide + export: deltas come from the source
// registry, decisions land in the export registry and tracer.
TEST(AdaptivePlannerTest, PlanForReadsSourceAndExportsDecisions) {
  obs::Registry source;
  source.counter("engine.shuffle.records_in").add(1000);
  source.counter("engine.shuffle.records_out").add(100);  // collapse 0.1
  source.counter("engine.shuffle.bytes").add(500);        // tiny shuffle
  source.gauge("engine.shuffle.merge_skew").set(1.0);
  auto& task_hist = source.histogram("engine.task_time_s", 0.0, 10.0, 200);
  for (int i = 0; i < 99; ++i) task_hist.observe(0.05);
  task_hist.observe(0.9);  // heavy tail

  obs::Registry exported;
  obs::Tracer tracer;
  AdaptivePlanner planner(&source, test_config(), &exported, &tracer);

  const StagePlan plan = planner.plan_for(open_traits());
  EXPECT_EQ(plan.combine, std::optional<bool>(true));
  EXPECT_TRUE(plan.single_thread);
  EXPECT_EQ(plan.decision_seq, 1u);

  EXPECT_EQ(exported.counter("planner.decisions").value(), 1u);
  EXPECT_GE(exported.counter("planner.switches").value(), 2u);
  EXPECT_DOUBLE_EQ(exported.gauge("planner.stage.combine").value(), 1.0);
  EXPECT_DOUBLE_EQ(exported.gauge("planner.stage.single_thread").value(), 1.0);
  EXPECT_DOUBLE_EQ(exported.gauge("planner.stage.partitions").value(), 1.0);
  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  EXPECT_NE(jsonl.str().find("planner.decide"), std::string::npos);
  EXPECT_NE(jsonl.str().find("combine=on"), std::string::npos);

  // Deltas: a second plan_for with no new counter traffic sees no shuffle
  // sample and keeps (does not re-derive) its decisions.
  const StagePlan second = planner.plan_for(open_traits());
  EXPECT_EQ(second.combine, std::optional<bool>(true));
  EXPECT_EQ(planner.status().decisions, 2u);
}

TEST(AdaptivePlannerTest, ObserveComputesCounterDeltas) {
  obs::Registry source;
  auto& in = source.counter("engine.shuffle.records_in");
  auto& out = source.counter("engine.shuffle.records_out");
  in.add(500);
  out.add(400);
  AdaptivePlanner planner(&source, test_config());
  auto first = planner.observe();
  EXPECT_EQ(first.shuffle_records_in, 500u);
  EXPECT_EQ(first.shuffle_records_out, 400u);
  in.add(250);
  out.add(10);
  auto second = planner.observe();
  EXPECT_EQ(second.shuffle_records_in, 250u);
  EXPECT_EQ(second.shuffle_records_out, 10u);
  auto third = planner.observe();
  EXPECT_FALSE(third.has_shuffle_sample());
}

}  // namespace
}  // namespace dias::runtime
