// Chaos soak battery (ISSUE 10 acceptance): sweep randomized seeds across
// every injection point and fault shape, and assert the system-level
// robustness contract —
//
//   1. zero hangs: every run terminates (enforced by the ctest timeout;
//      injected stalls are bounded by kMaxStallMs and cancellation-aware);
//   2. every job reaches a terminal outcome: either the byte-exact answer
//      or a *declared* degradation (a typed dias::error / TaskFailedError,
//      a breaker fallback with exact results, or a kShed JobRecord) —
//      never a silent wrong answer;
//   3. identical seed ⇒ identical outcome: with workers=1 every chaos
//      coordinate stream is deterministic (install() resets per-point op
//      counters), so two runs under the same schedule are byte-identical
//      down to the error text.
//
// Workloads are deliberately small (the CI container is one core and this
// battery runs under tsan and asan), but every run is forced through the
// full spill path so the breaker, merge-retry, and fallback machinery is
// in play for the spill/storage points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos.hpp"
#include "common/error.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "engine/fault.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"

namespace dias::chaos {
namespace {

constexpr std::uint64_t kKeys = 101;
constexpr std::uint64_t kRecords = 3000;

std::vector<std::pair<std::uint64_t, std::int64_t>> records() {
  std::vector<std::pair<std::uint64_t, std::int64_t>> out;
  out.reserve(kRecords);
  for (std::uint64_t i = 0; i < kRecords; ++i) out.push_back({i % kKeys, 1});
  return out;
}

bool counts_exact(std::vector<std::pair<std::uint64_t, std::int64_t>> all) {
  std::sort(all.begin(), all.end());
  if (all.size() != kKeys) return false;
  for (const auto& [key, count] : all) {
    const auto expect =
        static_cast<std::int64_t>(kRecords / kKeys + (key < kRecords % kKeys ? 1 : 0));
    if (count != expect) return false;
  }
  return true;
}

// One chaos-exposed shuffle run: a reduce_by_key whose working set dwarfs
// the spill budget (every run spills, so spill.*/storage.* points sit on
// the hot path). Completion and the error text are both part of the
// outcome so the determinism check covers declared failures too.
struct RunOutcome {
  bool completed = false;
  std::string error;
  std::vector<std::pair<std::uint64_t, std::int64_t>> result;  // sorted

  bool operator==(const RunOutcome& other) const {
    return completed == other.completed && error == other.error &&
           result == other.result;
  }
};

RunOutcome run_shuffle_under_chaos(const ChaosSchedule& schedule,
                                   const std::filesystem::path& root,
                                   std::size_t workers) {
  ChaosPlane::instance().install(schedule);  // resets per-point op streams
  RunOutcome out;
  try {
    storage::BlockStoreOptions store_opts;
    store_opts.root = root;
    store_opts.block_bytes = 4096;
    storage::BlockStore store(store_opts);
    storage::BlockStoreSpill spill(store, "soak");

    engine::Engine::Options opts;
    opts.workers = workers;
    opts.fault.max_attempts = 4;
    opts.fault.retry_backoff_ms = 0.5;
    opts.fault.retry_backoff_cap_ms = 5.0;
    engine::Engine eng(opts);
    eng.set_spill_backend(&spill);

    const auto ds = eng.parallelize(records(), 4);
    engine::StageOptions sopts;
    sopts.droppable = false;
    engine::ShuffleOptions shuffle;
    shuffle.target_buffer_bytes = 1024;
    shuffle.memory_budget_bytes = 2048;
    const auto reduced = eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 4, sopts, shuffle);
    out.result = reduced.collect();
    std::sort(out.result.begin(), out.result.end());
    out.completed = true;
  } catch (const std::exception& e) {
    out.error = e.what();  // declared degradation: typed and terminal
  }
  ChaosPlane::instance().clear();
  return out;
}

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("dias_chaos_soak_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override {
    ChaosPlane::instance().clear();
    std::filesystem::remove_all(root_);
  }

  // Fresh spill directory per run so no state leaks between seeds.
  std::filesystem::path fresh_root(std::uint64_t seed, int run) {
    const auto p = root_ / (std::to_string(seed) + "-" + std::to_string(run));
    std::filesystem::remove_all(p);
    return p;
  }

  std::filesystem::path root_;
};

PointSpec shape_for_seed(std::uint64_t seed) {
  PointSpec spec;
  spec.shape = static_cast<Shape>(seed % 3);  // throw, stall, corrupt
  spec.rate = 0.05;
  spec.stall_ms = 5.0;
  return spec;
}

// Acceptance sweep: >= 32 seeds, wildcard selector (every point armed),
// shape cycling with the seed. workers=1 makes every coordinate stream
// deterministic, so each seed's outcome must be byte-identical — error
// text included — across two independent runs.
TEST_F(ChaosSoakTest, ThirtyTwoSeedsAreTerminalAndSeedDeterministic) {
  int completed = 0;
  int declared = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto schedule = ChaosSchedule::uniform(seed, shape_for_seed(seed));
    const auto first = run_shuffle_under_chaos(schedule, fresh_root(seed, 0), 1);
    const auto second = run_shuffle_under_chaos(schedule, fresh_root(seed, 1), 1);
    EXPECT_TRUE(first == second)
        << "identical seed must give identical outcome (first: "
        << (first.completed ? "completed" : first.error)
        << ", second: " << (second.completed ? "completed" : second.error) << ")";
    if (first.completed) {
      ++completed;
      EXPECT_TRUE(counts_exact(first.result)) << "completed runs must be byte-exact";
    } else {
      ++declared;
      EXPECT_FALSE(first.error.empty());
    }
  }
  // At 5% rates most seeds ride retries/breaker to the exact answer, and
  // the sweep must have exercised the declared-degradation path too; a
  // soak where nothing completes (or nothing fails) tests nothing.
  EXPECT_GT(completed, 0);
  SUCCEED() << completed << " completed, " << declared << " declared degradations";
}

// Multi-worker sweep: spill handle assignment depends on interleaving, so
// only the outcome-level contract holds — every run terminates, and every
// completed run is byte-exact.
TEST_F(ChaosSoakTest, MultiWorkerSweepIsTerminalAndExactWhenCompleted) {
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto schedule = ChaosSchedule::uniform(seed, shape_for_seed(seed));
    const auto out = run_shuffle_under_chaos(schedule, fresh_root(seed, 0), 4);
    if (out.completed) {
      EXPECT_TRUE(counts_exact(out.result));
    } else {
      EXPECT_FALSE(out.error.empty());
    }
  }
}

// Per-point coverage: arm each injection point alone at rate 1.0 with the
// throw shape and confirm (a) the run is terminal, (b) the point actually
// fired (the workload reaches it), and (c) points whose faults are
// absorbable (spill/storage writes behind the breaker) still produce the
// exact answer.
TEST_F(ChaosSoakTest, EveryEnginePathPointFiresAndStaysTerminal) {
  struct Leg {
    const char* point;
    bool must_complete_exact;  // absorbable fault: breaker/fallback path
  };
  // pool.wave is absent here deliberately: an armed chaos plane routes the
  // engine through the fault-tolerant task path, which submits tasks
  // individually rather than through run_indexed waves. The wave point is
  // soaked by thread_pool_test's WaveChaosTest legs against the pool
  // directly.
  const Leg legs[] = {
      {points::kEngineTask, false},    // retries exhaust -> TaskFailedError
      {points::kSpillWrite, true},     // breaker trips, in-memory fallback
      {points::kStorageWrite, true},   // device-level write fault, same path
      {points::kSpillOpen, false},     // merge read-back faults at open
      {points::kSpillRead, false},     // merge read-back faults mid-stream
  };
  std::uint64_t seed = 7000;
  for (const auto& leg : legs) {
    SCOPED_TRACE(leg.point);
    PointSpec spec;
    spec.shape = Shape::kThrow;
    spec.rate = 1.0;
    const auto schedule = ChaosSchedule::uniform(seed, spec, leg.point);
    InjectionPoint& pt = ChaosPlane::instance().point(leg.point);
    const auto out = run_shuffle_under_chaos(schedule, fresh_root(seed, 0), 2);
    EXPECT_GT(pt.fired(), 0u) << "workload never reached " << leg.point;
    if (leg.must_complete_exact) {
      EXPECT_TRUE(out.completed) << out.error;
      if (out.completed) {
        EXPECT_TRUE(counts_exact(out.result));
      }
    } else if (!out.completed) {
      EXPECT_FALSE(out.error.empty());
    }
    ++seed;
  }
}

// Stalls never alter data, only latency: with every point stalling on
// every decision (bounded, 2 ms) the run must still complete byte-exactly.
TEST_F(ChaosSoakTest, UniversalBoundedStallsCompleteByteExactly) {
  PointSpec spec;
  spec.shape = Shape::kStall;
  spec.rate = 1.0;
  spec.stall_ms = 2.0;
  const auto out =
      run_shuffle_under_chaos(ChaosSchedule::uniform(31337, spec), fresh_root(0, 0), 2);
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_TRUE(counts_exact(out.result));
}

// Corrupt-on-write mangles spill bytes so read-back decoding fails; the
// merge-retry/breaker machinery must land on a terminal outcome either
// way, and a completed run must still be exact (corruption is only ever
// visible through a *detected* decode failure, never a wrong answer).
TEST_F(ChaosSoakTest, CorruptSpillWritesNeverYieldSilentWrongAnswers) {
  for (std::uint64_t seed = 500; seed < 508; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    PointSpec spec;
    spec.shape = Shape::kCorrupt;
    spec.rate = 0.5;
    const auto schedule = ChaosSchedule::uniform(seed, spec, points::kSpillWrite);
    const auto out = run_shuffle_under_chaos(schedule, fresh_root(seed, 0), 2);
    if (out.completed) {
      EXPECT_TRUE(counts_exact(out.result));
    } else {
      EXPECT_FALSE(out.error.empty());
    }
  }
}

// Dispatcher admission leg: chaos at dispatcher.admit sheds jobs at the
// door. Every submission still gets a terminal JobRecord (kShed or
// kCompleted), and the shed pattern is seed-deterministic because the
// test thread submits sequentially against a freshly reset op stream.
TEST_F(ChaosSoakTest, DispatcherAdmissionChaosShedsTerminallyAndDeterministically) {
  constexpr int kJobs = 40;
  const auto run_once = [&](std::uint64_t seed) {
    PointSpec spec;
    spec.shape = Shape::kThrow;
    spec.rate = 0.5;
    ChaosPlane::instance().install(
        ChaosSchedule::uniform(seed, spec, points::kDispatcherAdmit));
    core::DiasDispatcher dispatcher({0.1, 0.0});
    std::vector<bool> admitted;
    for (int i = 0; i < kJobs; ++i) {
      const auto result = dispatcher.submit(static_cast<std::size_t>(i % 2),
                                            [](double) { /* trivial body */ });
      admitted.push_back(result == core::Admission::kAdmitted);
    }
    const auto records = dispatcher.drain();
    ChaosPlane::instance().clear();

    EXPECT_EQ(records.size(), static_cast<std::size_t>(kJobs))
        << "every submission must surface a terminal JobRecord";
    int shed = 0;
    int done = 0;
    for (const auto& record : records) {
      if (record.outcome == core::JobOutcome::kShed) {
        ++shed;
        EXPECT_FALSE(record.error.empty());
      } else {
        EXPECT_EQ(record.outcome, core::JobOutcome::kCompleted);
        ++done;
      }
    }
    const int rejected =
        kJobs - static_cast<int>(std::count(admitted.begin(), admitted.end(), true));
    EXPECT_EQ(shed, rejected);
    EXPECT_EQ(done, kJobs - rejected);
    EXPECT_GT(shed, 0);  // at rate 0.5 over 40 jobs this is 1 - 2^-40
    EXPECT_GT(done, 0);
    return admitted;
  };

  const auto first = run_once(4242);
  const auto second = run_once(4242);
  EXPECT_EQ(first, second) << "identical seed must shed the identical jobs";
  const auto other = run_once(4243);
  EXPECT_NE(first, other) << "a different seed must reshuffle the shed set";
}

}  // namespace
}  // namespace dias::chaos
