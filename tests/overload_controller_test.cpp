// Closed-loop adaptive deflation (ISSUE 5): the OverloadController samples
// the live dispatcher, re-runs the deflator grid search against measured
// arrival rates, and installs escalated thetas — clamped to accuracy
// ceilings, with queue-depth hysteresis and a minimum hold time. Tests
// drive sample_once() directly for determinism.
#include "runtime/overload_controller.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/accuracy_profile.hpp"
#include "core/deflator.hpp"
#include "core/dispatcher.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::runtime {
namespace {

using namespace std::chrono_literals;
using core::ClassConstraint;
using core::Deflator;
using core::DiasDispatcher;

model::JobClassProfile profile(double lambda) {
  model::JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(8, 0.0);
  p.map_task_pmf.back() = 1.0;
  p.reduce_task_pmf.assign(2, 0.0);
  p.reduce_task_pmf.back() = 1.0;
  p.map_rate = 1.0;
  p.reduce_rate = 1.0;
  p.shuffle_rate = 2.0;
  p.mean_overhead_theta0 = 2.0;
  p.mean_overhead_theta90 = 1.0;
  return p;
}

Deflator make_deflator() {
  return Deflator({profile(0.02), profile(0.005)},
                  core::AccuracyProfile::paper_word_count());
}

// 15% error tolerance caps the low class at theta 0.2 on the word-count
// curve; the high class is exact (ceiling 0).
std::vector<ClassConstraint> constraints() {
  return {{15.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
}

OverloadControllerConfig manual_config() {
  OverloadControllerConfig cfg;
  cfg.ewma_alpha = 1.0;  // rate estimate == last sample, for determinism
  cfg.queue_depth_high = 3;
  cfg.queue_depth_low = 0;
  cfg.min_hold_s = 0.0;
  cfg.start_thread = false;
  return cfg;
}

TEST(OverloadControllerTest, DerivesCeilingsFromAccuracyConstraints) {
  DiasDispatcher dispatcher({0.0, 0.0});
  OverloadController controller(dispatcher, make_deflator(), constraints(),
                                manual_config());
  const auto status = controller.status();
  ASSERT_EQ(status.theta_ceiling.size(), 2u);
  EXPECT_NEAR(status.theta_ceiling[0], 0.2, 0.05);
  EXPECT_DOUBLE_EQ(status.theta_ceiling[1], 0.0);
  // EWMA seeds from the profiled rates.
  EXPECT_DOUBLE_EQ(status.measured_rate[0], 0.02);
  EXPECT_DOUBLE_EQ(status.measured_rate[1], 0.005);
  EXPECT_FALSE(status.overloaded);
}

TEST(OverloadControllerTest, IdleSystemStaysAtBaseline) {
  DiasDispatcher dispatcher({0.0, 0.0});
  OverloadController controller(dispatcher, make_deflator(), constraints(),
                                manual_config());
  for (int i = 0; i < 5; ++i) {
    controller.sample_once();
    std::this_thread::sleep_for(2ms);
  }
  const auto status = controller.status();
  EXPECT_FALSE(status.overloaded);
  EXPECT_EQ(status.escalations, 0u);
  EXPECT_DOUBLE_EQ(status.installed_theta[0], dispatcher.theta(0));
  EXPECT_DOUBLE_EQ(dispatcher.theta(0), 0.0);
  EXPECT_DOUBLE_EQ(dispatcher.theta(1), 0.0);
}

TEST(OverloadControllerTest, OverloadEscalatesThetaWithinCeiling) {
  obs::Registry reg;
  obs::Tracer tracer;
  DiasDispatcher dispatcher({0.0, 0.0});
  OverloadController controller(dispatcher, make_deflator(), constraints(),
                                manual_config(), &reg, &tracer);
  controller.sample_once();  // establish the arrival baseline

  // Jam the runner and pile up a burst: depth crosses queue_depth_high
  // and the measured low-class rate explodes past the profiled 0.02/s.
  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  for (int i = 0; i < 8; ++i) {
    dispatcher.submit(0, [](double) {});
  }
  std::this_thread::sleep_for(5ms);
  controller.sample_once();

  auto status = controller.status();
  EXPECT_TRUE(status.overloaded);
  EXPECT_GE(status.replans, 1u);
  EXPECT_GE(status.escalations, 1u);
  EXPECT_GT(status.measured_rate[0], 0.02);
  // Escalated, but never past the accuracy ceiling; the exact class is
  // never degraded.
  EXPECT_GT(dispatcher.theta(0), 0.0);
  EXPECT_LE(dispatcher.theta(0), status.theta_ceiling[0] + 1e-9);
  EXPECT_DOUBLE_EQ(dispatcher.theta(1), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("overload.state").value(), 1.0);
  EXPECT_GE(reg.counter("overload.replans").value(), 1u);
  EXPECT_GE(tracer.event_count(), 1u);

  // Recovery: drain the backlog, then the controller relaxes to baseline.
  release = true;
  dispatcher.drain();
  controller.sample_once();
  status = controller.status();
  EXPECT_FALSE(status.overloaded);
  EXPECT_GE(status.relaxations, 1u);
  EXPECT_DOUBLE_EQ(dispatcher.theta(0), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("overload.state").value(), 0.0);
}

// ISSUE 8 satellite: the deflator's plan *gauges* are overwritten on every
// re-plan, so a test watching them cannot count grid searches (re-planning
// to the same theta is invisible) and used to have to sleep and infer. The
// monotonic "deflator.replans" counter makes the count directly
// assertable: the controller runs exactly one grid search at construction
// (the baseline plan) plus one per Status::replans.
TEST(OverloadControllerTest, DeflatorReplanCounterTracksGridSearches) {
  obs::Registry reg;
  core::Deflator::Options deflator_opts;
  deflator_opts.metrics = &reg;
  Deflator deflator({profile(0.02), profile(0.005)},
                    core::AccuracyProfile::paper_word_count(), deflator_opts);
  DiasDispatcher dispatcher({0.0, 0.0});
  OverloadController controller(dispatcher, std::move(deflator), constraints(),
                                manual_config());
  EXPECT_EQ(reg.counter("deflator.replans").value(), 1u);  // baseline plan

  controller.sample_once();  // arrival baseline; idle, so no re-plan
  EXPECT_EQ(reg.counter("deflator.replans").value(),
            1u + controller.status().replans);

  // Jam the runner and pile up a burst to force an escalation re-plan.
  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  for (int i = 0; i < 8; ++i) {
    dispatcher.submit(0, [](double) {});
  }
  std::this_thread::sleep_for(5ms);
  controller.sample_once();
  const auto overloaded = controller.status();
  EXPECT_GE(overloaded.replans, 1u);
  EXPECT_EQ(reg.counter("deflator.replans").value(), 1u + overloaded.replans);

  // Recovery re-plan (relaxation) keeps the counter in lockstep, and the
  // counter never moves backwards.
  release = true;
  dispatcher.drain();
  controller.sample_once();
  const auto relaxed = controller.status();
  EXPECT_GE(relaxed.replans, overloaded.replans);
  EXPECT_EQ(reg.counter("deflator.replans").value(), 1u + relaxed.replans);
}

TEST(OverloadControllerTest, ExplicitCeilingsClampEscalation) {
  DiasDispatcher dispatcher({0.0, 0.0});
  auto cfg = manual_config();
  cfg.theta_ceiling = {0.08, 0.0};
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg);
  controller.sample_once();

  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  for (int i = 0; i < 8; ++i) dispatcher.submit(0, [](double) {});
  std::this_thread::sleep_for(5ms);
  controller.sample_once();
  EXPECT_LE(dispatcher.theta(0), 0.08 + 1e-9);
  EXPECT_DOUBLE_EQ(dispatcher.theta(1), 0.0);
  release = true;
  dispatcher.drain();
}

TEST(OverloadControllerTest, MinHoldSuppressesPlanFlapping) {
  DiasDispatcher dispatcher({0.0, 0.0});
  auto cfg = manual_config();
  cfg.min_hold_s = 1000.0;  // effectively: one plan change per test
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg);
  controller.sample_once();

  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  for (int i = 0; i < 8; ++i) dispatcher.submit(0, [](double) {});
  std::this_thread::sleep_for(5ms);
  controller.sample_once();
  const double escalated = dispatcher.theta(0);
  EXPECT_GT(escalated, 0.0);

  // Backlog clears, but the hold window pins the escalated plan.
  release = true;
  dispatcher.drain();
  controller.sample_once();
  const auto status = controller.status();
  EXPECT_FALSE(status.overloaded) << "hysteresis state still tracks depth";
  EXPECT_DOUBLE_EQ(dispatcher.theta(0), escalated) << "plan held by min_hold_s";
  EXPECT_EQ(status.relaxations, 0u);
}

TEST(OverloadControllerTest, HysteresisBandIsSticky) {
  DiasDispatcher dispatcher({0.0, 0.0});
  auto cfg = manual_config();
  cfg.queue_depth_high = 4;
  cfg.queue_depth_low = 1;
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg);

  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  for (int i = 0; i < 5; ++i) dispatcher.submit(0, [](double) {});
  controller.sample_once();
  EXPECT_TRUE(controller.status().overloaded);  // depth 5 >= high

  // Let the backlog shrink into the band (depth 2..3): still overloaded.
  release = true;
  while (dispatcher.load_snapshot().total_queue_depth() > 3) {
    std::this_thread::sleep_for(1ms);
  }
  const auto depth = dispatcher.load_snapshot().total_queue_depth();
  controller.sample_once();
  if (depth > 1) {
    EXPECT_TRUE(controller.status().overloaded) << "band must be sticky";
  }
  dispatcher.drain();
  controller.sample_once();
  EXPECT_FALSE(controller.status().overloaded);  // depth 0 <= low
}

TEST(OverloadControllerTest, BackgroundCadenceThreadSamples) {
  DiasDispatcher dispatcher({0.0, 0.0});
  auto cfg = manual_config();
  cfg.sample_period_s = 0.005;
  cfg.start_thread = true;
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg);
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (controller.status().samples < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  controller.stop();
  controller.stop();  // idempotent
  EXPECT_GE(controller.status().samples, 3u);
  const auto frozen = controller.status().samples;
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(controller.status().samples, frozen);
}

TEST(OverloadControllerTest, Validation) {
  DiasDispatcher dispatcher({0.0, 0.0});
  DiasDispatcher one_class({0.0});
  EXPECT_THROW(OverloadController(one_class, make_deflator(), constraints(),
                                  manual_config()),
               dias::precondition_error);
  EXPECT_THROW(OverloadController(dispatcher, make_deflator(),
                                  {ClassConstraint{15.0, 1e18, 1.0}}, manual_config()),
               dias::precondition_error);
  auto bad_alpha = manual_config();
  bad_alpha.ewma_alpha = 0.0;
  EXPECT_THROW(
      OverloadController(dispatcher, make_deflator(), constraints(), bad_alpha),
      dias::precondition_error);
  auto bad_band = manual_config();
  bad_band.queue_depth_high = 1;
  bad_band.queue_depth_low = 2;
  EXPECT_THROW(
      OverloadController(dispatcher, make_deflator(), constraints(), bad_band),
      dias::precondition_error);
  auto bad_memory_band = manual_config();
  bad_memory_band.memory_high_bytes = 100;
  bad_memory_band.memory_low_bytes = 200;
  EXPECT_THROW(
      OverloadController(dispatcher, make_deflator(), constraints(), bad_memory_band),
      dias::precondition_error);
  auto bad_tenant_band = manual_config();
  bad_tenant_band.tenant_overquota_high = 1;
  bad_tenant_band.tenant_overquota_low = 2;
  EXPECT_THROW(
      OverloadController(dispatcher, make_deflator(), constraints(), bad_tenant_band),
      dias::precondition_error);
  auto bad_ceiling = manual_config();
  bad_ceiling.theta_ceiling = {0.5};
  EXPECT_THROW(
      OverloadController(dispatcher, make_deflator(), constraints(), bad_ceiling),
      dias::precondition_error);
}

// --- memory pressure as a deflation trigger (ISSUE 6) ----------------------

TEST(OverloadControllerTest, MemoryPressureTriggersOverloadAndRelaxes) {
  core::DispatcherOptions dopts;
  dopts.memory_capacity_bytes = 10000;
  DiasDispatcher dispatcher({0.0, 0.0}, dopts);
  obs::Registry reg;
  auto cfg = manual_config();
  cfg.queue_depth_high = 1000;  // depth can never trip; memory is on its own
  cfg.memory_high_bytes = 500;
  cfg.memory_low_bytes = 100;
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg, &reg);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      /*memory_bytes=*/800);
  while (!started.load()) std::this_thread::sleep_for(1ms);

  controller.sample_once();
  auto status = controller.status();
  EXPECT_TRUE(status.overloaded) << "footprint 800 >= high 500";
  EXPECT_TRUE(status.memory_pressure);
  EXPECT_EQ(status.memory_in_use_bytes, 800u);
  EXPECT_GE(status.replans, 1u);  // overload drove a grid search
  EXPECT_DOUBLE_EQ(reg.gauge("overload.memory_pressure").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("overload.memory_in_use_bytes").value(), 800.0);

  // Queue depth is zero throughout, but memory alone holds the state:
  // overloaded must NOT clear until the footprint falls below the low mark.
  release = true;
  dispatcher.drain();
  controller.sample_once();
  status = controller.status();
  EXPECT_FALSE(status.memory_pressure);
  EXPECT_FALSE(status.overloaded);
  EXPECT_EQ(status.memory_in_use_bytes, 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("overload.memory_pressure").value(), 0.0);
}

TEST(OverloadControllerTest, MemoryBandIsStickyBetweenThresholds) {
  DiasDispatcher dispatcher({0.0, 0.0});
  auto cfg = manual_config();
  cfg.queue_depth_high = 1000;
  cfg.memory_high_bytes = 1000;
  cfg.memory_low_bytes = 200;
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg);

  std::atomic<bool> release_big{false};
  std::atomic<bool> release_small{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release_big.load()) std::this_thread::sleep_for(1ms);
      },
      900);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  // Second footprint queues behind the runner: 900 running + 500 queued.
  dispatcher.submit(
      0,
      [&](double) {
        while (!release_small.load()) std::this_thread::sleep_for(1ms);
      },
      500);

  controller.sample_once();
  EXPECT_TRUE(controller.status().memory_pressure);  // 1400 >= 1000

  // Drop into the band (500, between low 200 and high 1000): still sticky.
  release_big = true;
  while (dispatcher.load_snapshot().memory_in_use_bytes > 500) {
    std::this_thread::sleep_for(1ms);
  }
  controller.sample_once();
  EXPECT_TRUE(controller.status().memory_pressure) << "band must be sticky";
  EXPECT_TRUE(controller.status().overloaded);

  release_small = true;
  dispatcher.drain();
  controller.sample_once();
  EXPECT_FALSE(controller.status().memory_pressure);  // 0 <= low
  EXPECT_FALSE(controller.status().overloaded);
}

// --- tenant pressure as a deflation trigger (ISSUE 7) ----------------------

TEST(OverloadControllerTest, TenantPressureTriggersOverloadAndRelaxes) {
  core::DispatcherOptions dopts;
  dopts.tenant.enabled = true;
  dopts.tenant.ledger.burst_credit_s = 0.0;
  // A 50 ms usage halflife so the over-quota signal decays within the
  // test: the trigger clears by aging, not by any queue movement.
  dopts.tenant.ledger.usage_halflife_s = 0.05;
  DiasDispatcher dispatcher({0.0, 0.0}, dopts);
  obs::Registry reg;
  auto cfg = manual_config();
  cfg.queue_depth_high = 1000;  // depth can never trip; tenants are on their own
  cfg.tenant_overquota_high = 2;
  cfg.tenant_overquota_low = 0;
  OverloadController controller(dispatcher, make_deflator(), constraints(), cfg, &reg);

  // Two tenants burn far past their fair share (the third stays tiny so
  // the plant is genuinely contended, fair = 1/3 slot each).
  auto* ledger = dispatcher.tenant_ledger();
  ASSERT_NE(ledger, nullptr);
  ledger->note_completion(core::TenantId{1}, 50.0, 0.0);
  ledger->note_completion(core::TenantId{2}, 50.0, 0.0);
  ledger->note_completion(core::TenantId{3}, 0.001, 0.0);

  controller.sample_once();
  auto status = controller.status();
  EXPECT_TRUE(status.overloaded) << "2 over-quota tenants >= high 2";
  EXPECT_TRUE(status.tenant_pressure);
  EXPECT_GE(status.tenants_over_quota, 2u);
  EXPECT_LT(status.tenant_fairness_index, 1.0);
  EXPECT_GE(status.replans, 1u);  // tenant overload drove a grid search
  EXPECT_DOUBLE_EQ(reg.gauge("overload.tenant_pressure").value(), 1.0);
  EXPECT_GE(reg.gauge("overload.tenants_over_quota").value(), 2.0);

  // Queue depth is zero throughout; only the usage EWMA aging can clear
  // the trigger. After many halflives both hogs are back under share.
  std::this_thread::sleep_for(600ms);
  controller.sample_once();
  status = controller.status();
  EXPECT_FALSE(status.tenant_pressure);
  EXPECT_FALSE(status.overloaded);
  EXPECT_EQ(status.tenants_over_quota, 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("overload.tenant_pressure").value(), 0.0);
}

}  // namespace
}  // namespace dias::runtime
