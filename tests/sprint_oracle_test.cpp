#include "core/sprint_oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/deflator.hpp"

namespace dias::core {
namespace {

TEST(SprintOracleTest, EffectiveSpeedupKnownValues) {
  // 100 s job, sprint from dispatch at 2.5x: full speedup.
  EXPECT_NEAR(SprintOracle::effective_speedup(100.0, 0.0, 2.5), 2.5, 1e-12);
  // Sprint after 65 s: exec' = 65 + 35/2.5 = 79 -> effective 100/79.
  EXPECT_NEAR(SprintOracle::effective_speedup(100.0, 65.0, 2.5), 100.0 / 79.0, 1e-12);
  // Timeout beyond the execution: no sprinting at all.
  EXPECT_DOUBLE_EQ(SprintOracle::effective_speedup(100.0, 150.0, 2.5), 1.0);
  // No DVFS headroom.
  EXPECT_DOUBLE_EQ(SprintOracle::effective_speedup(100.0, 0.0, 1.0), 1.0);
}

TEST(SprintOracleTest, SprintSecondsPerJob) {
  EXPECT_NEAR(SprintOracle::sprint_seconds_per_job(100.0, 65.0, 2.5), 35.0 / 2.5, 1e-12);
  EXPECT_NEAR(SprintOracle::sprint_seconds_per_job(100.0, 0.0, 2.5), 40.0, 1e-12);
  EXPECT_DOUBLE_EQ(SprintOracle::sprint_seconds_per_job(100.0, 200.0, 2.5), 0.0);
}

cluster::SprintConfig budgeted(double replenish_w) {
  cluster::SprintConfig c;
  c.enabled = true;
  c.speedup = 2.5;
  c.base_power_w = 180.0;
  c.sprint_power_w = 270.0;  // extra 90 W
  c.budget_joules = 22000.0;
  c.replenish_watts = replenish_w;
  return c;
}

TEST(SprintOracleTest, SustainabilityBalance) {
  // 0.01 jobs/s sprinting 14 s each drains 90 * 0.14 = 12.6 W on average.
  const auto config = budgeted(24.0);
  EXPECT_TRUE(SprintOracle::sustainable(config, 0.01, 14.0));
  EXPECT_FALSE(SprintOracle::sustainable(config, 0.05, 14.0));  // 63 W > 24 W
  // Unlimited budget is always sustainable.
  auto unlimited = config;
  unlimited.budget_joules = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(SprintOracle::sustainable(unlimited, 10.0, 1000.0));
}

TEST(SprintOracleTest, MinSustainableTimeout) {
  const auto config = budgeted(10.0);
  const std::vector<double> grid{0.0, 30.0, 65.0, 90.0};
  // 0.01 jobs/s, 100 s jobs. Drain at T: 90 W * 0.01 * (100-T)/2.5.
  //   T=0:  36 W > 10 -> no. T=30: 25.2 -> no. T=65: 12.6 -> no. T=90: 3.6 ok.
  EXPECT_DOUBLE_EQ(SprintOracle::min_sustainable_timeout(config, 0.01, 100.0, grid), 90.0);
  // Lighter load sustains sprint-from-dispatch.
  EXPECT_DOUBLE_EQ(SprintOracle::min_sustainable_timeout(config, 0.002, 100.0, grid), 0.0);
  // Impossible load: +inf.
  const std::vector<double> tight{0.0};
  EXPECT_TRUE(std::isinf(SprintOracle::min_sustainable_timeout(config, 1.0, 100.0, tight)));
}

TEST(SprintOracleTest, Validation) {
  EXPECT_THROW(SprintOracle::effective_speedup(0.0, 0.0, 2.0), dias::precondition_error);
  EXPECT_THROW(SprintOracle::effective_speedup(1.0, -1.0, 2.0), dias::precondition_error);
  EXPECT_THROW(SprintOracle::effective_speedup(1.0, 0.0, 0.5), dias::precondition_error);
  EXPECT_THROW(
      SprintOracle::min_sustainable_timeout(budgeted(1.0), 0.1, 10.0, {}),
      dias::precondition_error);
}

model::JobClassProfile profile(double lambda) {
  model::JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(8, 0.0);
  p.map_task_pmf.back() = 1.0;
  p.reduce_task_pmf.assign(2, 0.0);
  p.reduce_task_pmf.back() = 1.0;
  p.map_rate = 1.0;
  p.reduce_rate = 1.0;
  p.shuffle_rate = 2.0;
  p.mean_overhead_theta0 = 2.0;
  p.mean_overhead_theta90 = 1.0;
  return p;
}

TEST(SprintOracleTest, DeflatorPicksSustainableTimeout) {
  Deflator::Options opts;
  opts.sprint_speedup = 2.5;
  opts.timeout_grid = {0.0, 2.0, 5.0};
  // E[S] ~ 7.1 s at theta=0; with 90 W extra power and lambda 0.02 only the
  // T=5 grid point stays below a 2 W replenish rate.
  opts.sprint_config = budgeted(2.0);
  Deflator deflator({profile(0.05), profile(0.02)}, AccuracyProfile::paper_word_count(),
                    opts);
  const std::vector<ClassConstraint> constraints{{30.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  const auto plan = deflator.plan(constraints);
  ASSERT_TRUE(plan.feasible);
  // The high class (theta 0) gets a finite, grid-member timeout.
  EXPECT_TRUE(std::isfinite(plan.sprint_timeout_s[1]));
  bool on_grid = false;
  for (double t : opts.timeout_grid) {
    if (plan.sprint_timeout_s[1] == t) on_grid = true;
  }
  EXPECT_TRUE(on_grid);
  // A generous replenish rate allows sprint-from-dispatch.
  opts.sprint_config = budgeted(1000.0);
  Deflator generous({profile(0.05), profile(0.02)}, AccuracyProfile::paper_word_count(),
                    opts);
  const auto plan2 = generous.plan(constraints);
  ASSERT_TRUE(plan2.feasible);
  EXPECT_DOUBLE_EQ(plan2.sprint_timeout_s[1], 0.0);
  // More sprinting -> faster high class.
  EXPECT_LT(plan2.prediction.per_class[1].mean_response,
            plan.prediction.per_class[1].mean_response + 1e-9);
}

}  // namespace
}  // namespace dias::core
