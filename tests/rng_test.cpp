#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dias {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  Welford acc;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    acc.add(u);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) {
    const auto x = rng.uniform_int(7);
    ASSERT_LT(x, 7u);
    ++counts[x];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, UniformIntOne) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(13);
  Welford acc;
  const double rate = 2.5;
  for (int i = 0; i < 200000; ++i) acc.add(rng.exponential(rate));
  EXPECT_NEAR(acc.mean(), 1.0 / rate, 0.01);
  EXPECT_NEAR(acc.variance(), 1.0 / (rate * rate), 0.01);
}

TEST(RngTest, ErlangMoments) {
  Rng rng(17);
  Welford acc;
  const int k = 4;
  const double rate = 2.0;
  for (int i = 0; i < 100000; ++i) acc.add(rng.erlang(k, rate));
  EXPECT_NEAR(acc.mean(), k / rate, 0.02);
  EXPECT_NEAR(acc.variance(), k / (rate * rate), 0.05);
}

TEST(RngTest, HyperExponentialMean) {
  Rng rng(19);
  Welford acc;
  // mean = p/r1 + (1-p)/r2
  for (int i = 0; i < 200000; ++i) acc.add(rng.hyper_exponential(0.3, 1.0, 4.0));
  EXPECT_NEAR(acc.mean(), 0.3 / 1.0 + 0.7 / 4.0, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  Welford acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.02);
}

TEST(RngTest, LognormalMean) {
  Rng rng(29);
  Welford acc;
  const double mu = 0.5, sigma = 0.4;
  for (int i = 0; i < 200000; ++i) acc.add(rng.lognormal(mu, sigma));
  EXPECT_NEAR(acc.mean(), std::exp(mu + 0.5 * sigma * sigma), 0.02);
}

TEST(RngTest, DiscreteMatchesWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(RngTest, DiscreteRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete(std::vector<double>{}), precondition_error);
  EXPECT_THROW(rng.discrete(std::vector<double>{0.0, 0.0}), precondition_error);
  EXPECT_THROW(rng.discrete(std::vector<double>{-1.0, 2.0}), precondition_error);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(37);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent(99);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, PreconditionsChecked) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), precondition_error);
  EXPECT_THROW(rng.exponential(-1.0), precondition_error);
  EXPECT_THROW(rng.erlang(0, 1.0), precondition_error);
  EXPECT_THROW(rng.uniform_int(0), precondition_error);
  EXPECT_THROW(rng.bernoulli(1.5), precondition_error);
  EXPECT_THROW(rng.uniform(2.0, 1.0), precondition_error);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution zipf(100, 1.1);
  double sum = 0.0;
  for (std::size_t r = 1; r <= 100; ++r) sum += zipf.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  const ZipfDistribution zipf(50, 1.0);
  for (std::size_t r = 2; r <= 50; ++r) EXPECT_LE(zipf.pmf(r), zipf.pmf(r - 1) + 1e-12);
}

TEST(ZipfTest, SamplesMatchPmf) {
  Rng rng(41);
  const ZipfDistribution zipf(20, 1.2);
  std::vector<int> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto r = zipf(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 20u);
    ++counts[r];
  }
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.pmf(r), 0.01);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (std::size_t r = 1; r <= 10; ++r) EXPECT_NEAR(zipf.pmf(r), 0.1, 1e-9);
}

class ZipfParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfParamTest, TopRankShareGrowsWithExponent) {
  const double s = GetParam();
  const ZipfDistribution zipf(1000, s);
  // The rank-1 share must dominate the rank-10 share increasingly with s.
  EXPECT_GE(zipf.pmf(1), zipf.pmf(10) - 1e-15);
  if (s > 0.0) {
    EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfParamTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 1.5, 2.0));

}  // namespace
}  // namespace dias
