// Sharded submission plane + multi-tenant ladder (ISSUE 7).
//
// Covers the tentpole and three satellites:
//   * drain-ordering property: random cross-lane submit interleavings must
//     drain byte-identically to the single-lane dispatcher;
//   * lost-wakeup regression for the gated cv notifies: every blocked
//     submitter is eventually admitted and every job completes;
//   * load_snapshot() during a submit storm is race-free (run under the
//     tsan label) and its staleness is bounded by admit_seq_lo/hi;
//   * the FairShareLedger over-quota ladder wired into submit():
//     deflate -> deprioritize -> shed, visible in records and metrics.
#include "core/dispatcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/tenant.hpp"
#include "obs/metrics.hpp"

namespace dias::core {
namespace {

using namespace std::chrono_literals;

struct JobKey {
  std::size_t priority;
  std::uint64_t seq;
  std::uint64_t tenant;
  bool operator==(const JobKey&) const = default;
};

std::vector<JobKey> keys_of(const std::vector<DiasDispatcher::JobRecord>& records) {
  std::vector<JobKey> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back({r.priority, r.seq, r.tenant.value});
  return out;
}

// Submits the same randomized interleaving into a sharded and a single-lane
// dispatcher (runner plugged so everything queues), and asserts the drains
// are byte-identical and match the documented order: the plug first, then
// highest class first, FCFS by admit seq within a class.
void run_drain_order_round(unsigned seed, bool tenant_affine) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kJobsPerThread = 30;
  constexpr std::size_t kClasses = 3;

  DispatcherOptions sharded_opts;
  sharded_opts.lanes = 4;
  DispatcherOptions single_opts;
  single_opts.lanes = 1;
  DiasDispatcher sharded({0.1, 0.2, 0.3}, sharded_opts);
  DiasDispatcher single({0.1, 0.2, 0.3}, single_opts);
  ASSERT_EQ(sharded.lanes(), 4u);
  ASSERT_EQ(single.lanes(), 1u);

  // Plug both runners with a top-class job so every later submission is
  // still queued when the interleaving finishes.
  std::atomic<bool> release{false};
  std::atomic<int> plugs_running{0};
  for (DiasDispatcher* d : {&sharded, &single}) {
    d->submit(kClasses - 1, [&](double) {
      plugs_running.fetch_add(1);
      while (!release.load()) std::this_thread::sleep_for(100us);
    });
  }
  while (plugs_running.load() < 2) std::this_thread::sleep_for(100us);

  // Pre-generated random priorities; the interleaving itself is a strict
  // round-robin over the submitter threads, so both dispatchers see the
  // identical global submission order (and assign identical admit seqs).
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> pick_class(0, kClasses - 1);
  std::vector<std::size_t> priorities(kThreads * kJobsPerThread);
  for (auto& p : priorities) p = pick_class(rng);

  std::atomic<std::size_t> turn{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < kJobsPerThread; ++i) {
        const std::size_t my_turn = i * kThreads + t;
        while (turn.load(std::memory_order_acquire) != my_turn) {
          std::this_thread::yield();
        }
        const std::size_t priority = priorities[my_turn];
        const TenantId tenant =
            tenant_affine ? TenantId{t + 1} : TenantId{};  // no ledger: id only
        sharded.submit(priority, tenant, [](double) {});
        single.submit(priority, tenant, [](double) {});
        turn.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (auto& th : submitters) th.join();
  release = true;

  const auto sharded_records = sharded.drain();
  const auto single_records = single.drain();
  ASSERT_EQ(sharded_records.size(), kThreads * kJobsPerThread + 1);
  ASSERT_EQ(single_records.size(), kThreads * kJobsPerThread + 1);

  const auto sharded_keys = keys_of(sharded_records);
  const auto single_keys = keys_of(single_records);
  EXPECT_EQ(sharded_keys, single_keys) << "sharded drain diverged from single-lane";

  // Both must equal the predicted order outright: the plug (seq 0, top
  // class) completes first; the rest were all queued at release, so they
  // execute highest class first, FCFS by admit seq within the class.
  std::vector<JobKey> predicted = single_keys;
  std::sort(predicted.begin() + 1, predicted.end(), [](const JobKey& a, const JobKey& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq < b.seq;
  });
  EXPECT_EQ(sharded_keys, predicted);
}

TEST(DispatcherShardTest, DrainOrderIsByteIdenticalToSingleLane) {
  for (unsigned seed = 1; seed <= 4; ++seed) {
    run_drain_order_round(seed, /*tenant_affine=*/false);
  }
}

TEST(DispatcherShardTest, DrainOrderIsByteIdenticalWithTenantAffineLanes) {
  for (unsigned seed = 11; seed <= 14; ++seed) {
    run_drain_order_round(seed, /*tenant_affine=*/true);
  }
}

// Satellite: the completion path notifies space/drain cvs only when the
// corresponding predicate can have flipped. A lost wakeup would leave a
// blocked submitter waiting forever; this hammers tight queue, total, and
// memory caps from many threads and requires every job to be admitted
// (kBlock never rejects) and to complete.
TEST(DispatcherShardTest, BlockedSubmittersAllEventuallyAdmitted) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kBlock;
  opts.total_capacity = 4;
  opts.classes = {ClassPolicy{2, std::numeric_limits<double>::infinity()},
                  ClassPolicy{3, std::numeric_limits<double>::infinity()}};
  opts.memory_capacity_bytes = 4096;
  opts.lanes = 4;
  DiasDispatcher dispatcher({0.0, 0.0}, opts);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 50;
  std::atomic<int> runs{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        // Heterogeneous footprints so several blocked submitters wait on
        // different memory predicates at once (the notify_all-for-space
        // case).
        const std::size_t mem = static_cast<std::size_t>(((t + i) % 3) * 512);
        if (dispatcher.submit(static_cast<std::size_t>(i % 2),
                              [&](double) { runs.fetch_add(1); },
                              mem) == Admission::kAdmitted) {
          admitted.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto records = dispatcher.drain();
  EXPECT_EQ(admitted.load(), kThreads * kJobsPerThread);
  EXPECT_EQ(runs.load(), kThreads * kJobsPerThread);
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kThreads * kJobsPerThread));
  for (const auto& r : records) EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
}

// Satellite: load_snapshot() off the global lock. Under tsan this asserts
// the merged view races with nothing; the admit_seq_lo/hi pair bounds the
// staleness, and the final quiescent snapshot is exact.
TEST(DispatcherShardTest, SnapshotDuringSubmitStormIsConsistent) {
  DispatcherOptions opts;
  opts.lanes = 8;
  DiasDispatcher dispatcher({0.0, 0.0}, opts);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 400;
  std::atomic<bool> storm_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        dispatcher.submit(static_cast<std::size_t>(i % 2),
                          TenantId{static_cast<std::uint64_t>(t % 3 + 1)},
                          [](double) {});
      }
    });
  }
  std::uint64_t last_hi = 0;
  while (!storm_done.load()) {
    const auto snap = dispatcher.load_snapshot();
    EXPECT_LE(snap.admit_seq_lo, snap.admit_seq_hi);
    EXPECT_GE(snap.admit_seq_lo, last_hi == 0 ? 0 : snap.admit_seq_lo);
    EXPECT_LE(last_hi, snap.admit_seq_hi);  // the admit seq is monotone
    last_hi = snap.admit_seq_hi;
    std::uint64_t arrivals = 0;
    for (const auto& c : snap.classes) arrivals += c.arrivals;
    EXPECT_LE(arrivals, static_cast<std::uint64_t>(kThreads) * kJobsPerThread);
    if (arrivals >= static_cast<std::uint64_t>(kThreads) * kJobsPerThread) {
      storm_done = true;
    }
  }
  for (auto& th : threads) th.join();
  dispatcher.drain();

  const auto snap = dispatcher.load_snapshot();
  EXPECT_EQ(snap.admit_seq_lo, snap.admit_seq_hi);  // quiescent: exact view
  std::uint64_t completed = 0;
  for (const auto& c : snap.classes) completed += c.completed;
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kThreads) * kJobsPerThread);
  EXPECT_EQ(snap.total_queue_depth(), 0u);
  EXPECT_EQ(snap.memory_in_use_bytes, 0u);
}

// Tentpole integration: the ledger's over-quota ladder degrades before it
// drops — deflate (theta floor), then deprioritize (behind compliant work
// of the class), then shed — and the decisions land in JobRecords,
// snapshot counters, and metrics.
TEST(DispatcherShardTest, TenantLadderDeflatesDeprioritizesShedsInOrder) {
  DispatcherOptions opts;
  opts.lanes = 4;
  opts.tenant.enabled = true;
  opts.tenant.deflate_theta = 0.5;
  opts.tenant.ledger.capacity_slots = 1.0;
  opts.tenant.ledger.usage_halflife_s = 5.0;
  opts.tenant.ledger.burst_credit_s = 0.0;  // ladder engages immediately
  opts.tenant.ledger.deprioritize_ratio = 2.0;
  opts.tenant.ledger.shed_ratio = 4.0;
  DiasDispatcher dispatcher({0.2}, opts);
  obs::Registry registry;
  dispatcher.attach_observability(&registry, nullptr);

  FairShareLedger* ledger = dispatcher.tenant_ledger();
  ASSERT_NE(ledger, nullptr);
  const TenantId shed_t{10}, deprio_t{11}, deflate_t{12}, small_t{13};
  // Four active equal-weight tenants => fair rate 0.25 slot/s
  // (tau = 5/ln2 ~= 7.21 s): 10/tau ~= 1.39 > 4*fair -> shed;
  // 5/tau ~= 0.69 in (2*fair, 4*fair] -> deprioritize;
  // 3/tau ~= 0.42 in (fair, 2*fair] -> deflate; 0.01/tau -> within share.
  ledger->note_completion(small_t, 0.01, 0.0);
  ledger->note_completion(deflate_t, 3.0, 0.0);
  ledger->note_completion(deprio_t, 5.0, 0.0);
  ledger->note_completion(shed_t, 10.0, 0.0);

  // Plug the runner so queue order is observable.
  std::atomic<bool> release{false};
  std::atomic<bool> plug_running{false};
  dispatcher.submit(0, [&](double) {
    plug_running = true;
    while (!release.load()) std::this_thread::sleep_for(100us);
  });
  while (!plug_running.load()) std::this_thread::sleep_for(100us);

  std::mutex order_mutex;
  std::vector<std::string> order;
  auto tracked = [&](std::string name) {
    return [&, name = std::move(name)](double) {
      std::lock_guard lock(order_mutex);
      order.push_back(name);
    };
  };

  // Over the shed threshold: turned away, terminal kShed record.
  EXPECT_EQ(dispatcher.submit(0, shed_t, tracked("shed")), Admission::kRejected);
  // Deflated: runs, but at the theta floor instead of the class's 0.2.
  std::atomic<double> deflate_theta_seen{-1.0};
  EXPECT_EQ(dispatcher.submit(0, deflate_t,
                              [&](double theta) { deflate_theta_seen = theta; }),
            Admission::kAdmitted);
  // Deprioritized: admitted, but queued behind the class's compliant work
  // even though its admit seq is earlier.
  EXPECT_EQ(dispatcher.submit(0, deprio_t, tracked("deprio")), Admission::kAdmitted);
  EXPECT_EQ(dispatcher.submit(0, small_t, tracked("small")), Admission::kAdmitted);
  EXPECT_EQ(dispatcher.submit(0, tracked("untenanted")), Admission::kAdmitted);

  const auto queued_snap = dispatcher.load_snapshot();
  EXPECT_EQ(queued_snap.classes[0].penalized_depth, 1u);
  EXPECT_EQ(queued_snap.tenants_tracked, 4u);
  EXPECT_EQ(queued_snap.tenant_shed, 1u);
  EXPECT_EQ(queued_snap.tenant_deflated, 1u);
  EXPECT_EQ(queued_snap.tenant_deprioritized, 1u);
  EXPECT_GT(queued_snap.tenant_fairness_index, 0.0);
  EXPECT_LT(queued_snap.tenant_fairness_index, 1.0);

  release = true;
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 6u);  // plug + shed + 4 admitted

  // The penalized job ran last despite its earlier admit seq.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "small");
  EXPECT_EQ(order[1], "untenanted");
  EXPECT_EQ(order[2], "deprio");
  EXPECT_DOUBLE_EQ(deflate_theta_seen.load(), 0.5);

  for (const auto& r : records) {
    if (r.tenant == shed_t) {
      EXPECT_EQ(r.outcome, JobOutcome::kShed);
      EXPECT_EQ(r.tenant_action, TenantAction::kShed);
    } else if (r.tenant == deflate_t) {
      EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
      EXPECT_EQ(r.tenant_action, TenantAction::kDeflate);
      EXPECT_DOUBLE_EQ(r.theta, 0.5);
    } else if (r.tenant == deprio_t) {
      EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
      EXPECT_EQ(r.tenant_action, TenantAction::kDeprioritize);
      EXPECT_DOUBLE_EQ(r.theta, 0.5);  // deprioritized still runs deflated
    } else if (r.tenant == small_t) {
      EXPECT_EQ(r.outcome, JobOutcome::kCompleted);
      EXPECT_EQ(r.tenant_action, TenantAction::kNone);
      EXPECT_DOUBLE_EQ(r.theta, 0.2);
    }
  }

  EXPECT_EQ(registry.counter("dispatcher.tenant.shed").value(), 1u);
  EXPECT_EQ(registry.counter("dispatcher.tenant.deflated").value(), 1u);
  EXPECT_EQ(registry.counter("dispatcher.tenant.deprioritized").value(), 1u);
  EXPECT_GT(registry.gauge("dispatcher.tenant.fairness_index").value(), 0.0);
}

TEST(DispatcherShardTest, LaneCountDefaultsAndOverrides) {
  DiasDispatcher auto_lanes({0.0});
  EXPECT_GE(auto_lanes.lanes(), 1u);
  EXPECT_LE(auto_lanes.lanes(), 16u);
  DispatcherOptions opts;
  opts.lanes = 3;
  DiasDispatcher three({0.0}, opts);
  EXPECT_EQ(three.lanes(), 3u);
  EXPECT_EQ(three.tenant_ledger(), nullptr);  // tenancy off by default
  std::atomic<int> runs{0};
  for (int i = 0; i < 32; ++i) {
    three.submit(0, [&](double) { ++runs; });
  }
  three.drain();
  EXPECT_EQ(runs.load(), 32);
}

}  // namespace
}  // namespace dias::core
