// Runtime sprinting: SprintGovernor over the elastic engine pool, and its
// integration with DiasDispatcher (Tk timers, slot leases, budget
// enforcement, sprint intervals in JobRecord). The stress cases double as
// the TSAN target for ElasticThreadPool resize races: sprint grant/revoke
// fires while shuffle stages are writing per-slot buffers.
#include "runtime/sprint_governor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::runtime {
namespace {

using namespace std::chrono_literals;

SprintGovernorConfig fast_config(double tk_s, double budget_j = 1e9) {
  SprintGovernorConfig c;
  c.enabled = true;
  c.budget.base_power_w = 180.0;
  c.budget.sprint_power_w = 270.0;  // extra power 90 W
  c.budget.budget_joules = budget_j;
  c.budget.budget_cap_joules = budget_j;
  c.timeout_s = {tk_s};
  return c;
}

TEST(SprintGovernorTest, GrantsReserveAfterClassTimeout) {
  engine::ThreadPool pool(2, 2);
  SprintGovernor governor(fast_config(0.03), pool);
  governor.job_started(0);
  EXPECT_FALSE(governor.sprinting());
  std::this_thread::sleep_for(120ms);
  EXPECT_TRUE(governor.sprinting());
  EXPECT_EQ(pool.active_workers(), 4u);  // reserve leased
  const auto intervals = governor.job_finished();
  EXPECT_EQ(pool.active_workers(), 2u);  // lease revoked at completion
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_GE(intervals[0].begin_s, 0.03 - 1e-3);
  EXPECT_GT(intervals[0].end_s, intervals[0].begin_s);
  EXPECT_EQ(governor.sprints_granted(), 1u);
}

TEST(SprintGovernorTest, ShortJobNeverReachesTimeout) {
  engine::ThreadPool pool(2, 2);
  SprintGovernor governor(fast_config(10.0), pool);
  governor.job_started(0);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(governor.sprinting());
  EXPECT_TRUE(governor.job_finished().empty());
  EXPECT_EQ(governor.sprints_granted(), 0u);
}

TEST(SprintGovernorTest, ClassesBeyondTimeoutVectorNeverSprint) {
  engine::ThreadPool pool(1, 1);
  SprintGovernor governor(fast_config(0.0), pool);  // only class 0 configured
  governor.job_started(3);
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(governor.sprinting());
  EXPECT_TRUE(governor.job_finished().empty());
}

TEST(SprintGovernorTest, BudgetDepletionRevokesMidJob) {
  engine::ThreadPool pool(2, 2);
  // 4.5 J at 90 W extra power: ~50 ms of sprinting, then forced revoke.
  SprintGovernor governor(fast_config(0.0, 4.5), pool);
  obs::Registry reg;
  governor.attach_observability(&reg, nullptr);
  governor.job_started(0);
  std::this_thread::sleep_for(250ms);
  EXPECT_FALSE(governor.sprinting());       // boost ended long before the job
  EXPECT_EQ(pool.active_workers(), 2u);     // lease returned on revoke
  const auto intervals = governor.job_finished();
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_NEAR(intervals[0].duration_s(), 0.05, 0.04);
  EXPECT_EQ(reg.counter("runtime.sprint.revoked_budget").value(), 1u);
  // Conservation: consumed can never exceed budget + replenishment (none).
  EXPECT_LE(governor.budget_consumed(), 4.5 + 1e-6);
}

TEST(SprintGovernorTest, EmptyBudgetDeniesSprint) {
  engine::ThreadPool pool(2, 2);
  SprintGovernor governor(fast_config(0.0, 0.0), pool);
  governor.job_started(0);
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(governor.sprinting());
  EXPECT_TRUE(governor.job_finished().empty());
  EXPECT_EQ(governor.sprints_granted(), 0u);
  EXPECT_GE(governor.sprints_denied(), 1u);
}

TEST(SprintGovernorTest, EmitsSpansAndCounters) {
  engine::ThreadPool pool(1, 2);
  SprintGovernor governor(fast_config(0.0), pool);
  obs::Registry reg;
  obs::Tracer tracer;
  governor.attach_observability(&reg, &tracer);
  governor.job_started(0);
  std::this_thread::sleep_for(60ms);
  governor.job_finished();
  EXPECT_EQ(reg.counter("runtime.sprint.granted").value(), 1u);
  EXPECT_GT(reg.gauge("runtime.sprint.budget_consumed_j").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("runtime.sprint.boost_slots").value(), 0.0);
  EXPECT_EQ(tracer.event_count(), 2u);  // one begin/end "runtime.sprint" span
}

TEST(SprintGovernorTest, Validation) {
  engine::ThreadPool pool(1, 1);
  auto config = fast_config(0.0);
  config.timeout_s = {-1.0};
  EXPECT_THROW(SprintGovernor(config, pool), dias::precondition_error);
  SprintGovernor governor(fast_config(0.0), pool);
  EXPECT_THROW(governor.job_finished(), dias::precondition_error);
  governor.job_started(0);
  EXPECT_THROW(governor.job_started(0), dias::precondition_error);
  governor.job_finished();
}

// --- dispatcher integration ------------------------------------------------

// A parallelizable engine job: `partitions` map tasks sleeping `task_ms`
// each. On w active workers it takes ~ceil(partitions/w) * task_ms.
void run_sleep_job(engine::Engine& eng, std::size_t partitions, int task_ms) {
  std::vector<int> values(partitions);
  std::iota(values.begin(), values.end(), 0);
  auto ds = eng.parallelize(std::move(values), partitions);
  engine::StageOptions opts;
  opts.name = "sleep";
  opts.droppable = false;
  eng.map_partitions(
      ds,
      [task_ms](const std::vector<int>& part) {
        std::this_thread::sleep_for(std::chrono::milliseconds(task_ms));
        return part;
      },
      opts);
}

TEST(SprintDispatcherTest, RecordsSprintIntervalsInJobRecord) {
  engine::Engine::Options opts;
  opts.workers = 2;
  opts.reserve_workers = 2;
  engine::Engine eng(opts);
  SprintGovernorConfig config = fast_config(0.0);
  config.timeout_s = {std::numeric_limits<double>::infinity(), 0.02};
  SprintGovernor governor(std::move(config), eng.pool());
  core::DiasDispatcher dispatcher({0.0, 0.0});
  dispatcher.attach_sprint_governor(&governor);

  dispatcher.submit(1, [&](double) { run_sleep_job(eng, 8, 20); });
  dispatcher.submit(0, [&](double) { run_sleep_job(eng, 2, 5); });
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_LE(r.arrival_s, r.start_s);
    EXPECT_LE(r.start_s, r.completion_s);
    if (r.priority == 1) {
      // The high-priority job outlived Tk = 20 ms, so it sprinted; the
      // boost window sits inside [start, completion] on the dispatcher
      // clock (small slack for the clock rebase).
      ASSERT_FALSE(r.sprint_intervals.empty());
      EXPECT_GE(r.sprint_intervals[0].begin_s, r.start_s - 1e-3);
      EXPECT_LE(r.sprint_intervals[0].end_s, r.completion_s + 1e-3);
      EXPECT_GT(r.sprint_s(), 0.0);
    } else {
      EXPECT_TRUE(r.sprint_intervals.empty());  // class 0 never sprints
    }
  }
}

TEST(SprintDispatcherTest, SprintingShortensParallelizableJobs) {
  const auto run_once = [](bool sprint) {
    engine::Engine::Options opts;
    opts.workers = 2;
    opts.reserve_workers = 6;
    engine::Engine eng(opts);
    SprintGovernorConfig config = fast_config(0.0);
    config.enabled = sprint;
    SprintGovernor governor(std::move(config), eng.pool());
    core::DiasDispatcher dispatcher({0.0});
    dispatcher.attach_sprint_governor(&governor);
    dispatcher.submit(0, [&](double) { run_sleep_job(eng, 16, 20); });
    const auto records = dispatcher.drain();
    return records.at(0).execution_s();
  };
  // 16 tasks x 20 ms: ~8 rounds on 2 workers vs ~2 rounds on 8 workers.
  const double base_s = run_once(false);
  const double sprint_s = run_once(true);
  EXPECT_GT(base_s, 0.12);
  EXPECT_LT(sprint_s, 0.75 * base_s);
}

// --- TSAN stress: submissions + grant/revoke churn vs shuffle stages -------

// Shuffle-heavy job on the shared engine: reduce_by_key over a small key
// space exercises the per-slot write buffers while the governor's watchdog
// leases/revokes reserve slots. Returns the reduced sum for verification.
std::uint64_t run_shuffle_job(engine::Engine& eng, std::uint64_t records) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> data;
  data.reserve(records);
  for (std::uint64_t i = 0; i < records; ++i) {
    data.emplace_back(static_cast<std::uint32_t>(i % 37), 1);
  }
  auto ds = eng.parallelize(std::move(data), 16);
  engine::StageOptions opts;
  opts.name = "stress";
  opts.droppable = false;
  auto reduced = eng.reduce_by_key(
      ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, 8, opts);
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < reduced.partitions(); ++p) {
    for (const auto& [k, v] : reduced.partition(p)) total += v;
  }
  return total;
}

TEST(SprintStressTest, ConcurrentSubmitWithSprintChurnOverShuffles) {
  engine::Engine::Options opts;
  opts.workers = 2;
  opts.reserve_workers = 4;
  engine::Engine eng(opts);
  // Small budget + zero Tk: every job sprints immediately and most sprints
  // get revoked by depletion mid-shuffle, maximizing resize churn.
  SprintGovernorConfig config = fast_config(0.0, 2.0);
  config.budget.replenish_watts = 45.0;
  config.timeout_s = {0.0, 0.0};
  SprintGovernor governor(std::move(config), eng.pool());
  core::DiasDispatcher dispatcher({0.0, 0.0});
  dispatcher.attach_sprint_governor(&governor);

  constexpr int kJobsPerThread = 6;
  constexpr std::uint64_t kRecords = 20000;
  std::atomic<std::uint64_t> bad_totals{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        dispatcher.submit(static_cast<std::size_t>((t + j) % 2), [&](double) {
          if (run_shuffle_job(eng, kRecords) != kRecords) ++bad_totals;
        });
      }
    });
  }
  for (auto& s : submitters) s.join();
  const auto records = dispatcher.drain();
  EXPECT_EQ(records.size(), 4u * kJobsPerThread);
  EXPECT_EQ(bad_totals.load(), 0u);  // shuffles stayed correct under resizes
  // Slot-id stability: the pool never grew past its construction size, so
  // per-slot buffers sized by workers() covered every slot that ran.
  EXPECT_EQ(eng.pool().workers(), 6u);
  EXPECT_EQ(eng.pool().active_workers(), 2u);  // every lease returned
}

}  // namespace
}  // namespace dias::runtime
