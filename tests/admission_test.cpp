// Overload protection at the dispatcher (ISSUE 5): bounded admission,
// terminal job outcomes, class deadlines with cooperative cancellation,
// dynamic theta, load snapshots, and the documented drain() ordering.
#include "core/dispatcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sprint_governor.hpp"

namespace dias::core {
namespace {

using namespace std::chrono_literals;

std::size_t count_outcome(const std::vector<DiasDispatcher::JobRecord>& records,
                          JobOutcome outcome) {
  std::size_t n = 0;
  for (const auto& r : records) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

TEST(AdmissionTest, UnboundedDefaultsBehaveLikeSeedDispatcher) {
  DiasDispatcher dispatcher({0.2, 0.0});
  std::atomic<int> runs{0};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dispatcher.submit(static_cast<std::size_t>(i % 2), [&](double) { ++runs; }),
              Admission::kAdmitted);
  }
  const auto records = dispatcher.drain();
  EXPECT_EQ(runs.load(), 20);
  ASSERT_EQ(records.size(), 20u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 20u);
  for (const auto& r : records) EXPECT_TRUE(r.error.empty());
}

TEST(AdmissionTest, RejectPolicyShedsAtTheDoor) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.classes = {ClassPolicy{2, std::numeric_limits<double>::infinity()}};
  DiasDispatcher dispatcher({0.0}, opts);

  std::atomic<bool> release{false};
  std::atomic<int> runs{0};
  // Occupy the runner so submissions stay queued.
  dispatcher.submit(0, [&](double) {
    ++runs;
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);  // blocker is running, queue empty
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++runs; }), Admission::kAdmitted);
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++runs; }), Admission::kAdmitted);
  // Queue full (capacity 2): the third is turned away with a record.
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++runs; }), Admission::kRejected);
  release = true;
  const auto records = dispatcher.drain();
  EXPECT_EQ(runs.load(), 3);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 3u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 1u);
  for (const auto& r : records) {
    if (r.outcome == JobOutcome::kShed) {
      EXPECT_FALSE(r.error.empty());
      EXPECT_DOUBLE_EQ(r.execution_s(), 0.0);
    }
  }
}

TEST(AdmissionTest, ShedOldestLowestEvictsWithinClassCap) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kShedOldestLowest;
  opts.classes = {ClassPolicy{1, std::numeric_limits<double>::infinity()}};
  DiasDispatcher dispatcher({0.0}, opts);

  std::atomic<bool> release{false};
  std::vector<int> ran;
  std::mutex mutex;
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  auto tagged = [&](int tag) {
    return [&, tag](double) {
      std::lock_guard lock(mutex);
      ran.push_back(tag);
    };
  };
  EXPECT_EQ(dispatcher.submit(0, tagged(1)), Admission::kAdmitted);
  // Class cap 1: the newcomer evicts the queued job 1.
  EXPECT_EQ(dispatcher.submit(0, tagged(2)), Admission::kAdmitted);
  release = true;
  const auto records = dispatcher.drain();
  EXPECT_EQ(ran, std::vector<int>{2});
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 1u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 2u);
}

TEST(AdmissionTest, ShedOldestLowestProtectsHigherPriorityWork) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kShedOldestLowest;
  opts.total_capacity = 1;
  DiasDispatcher dispatcher({0.0, 0.0}, opts);

  std::atomic<bool> release{false};
  std::atomic<int> low_runs{0};
  std::atomic<int> high_runs{0};
  dispatcher.submit(1, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  // The queue holds one high-priority job; a low-priority arrival may not
  // displace it and is shed instead.
  EXPECT_EQ(dispatcher.submit(1, [&](double) { ++high_runs; }), Admission::kAdmitted);
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++low_runs; }), Admission::kRejected);
  release = true;
  const auto records = dispatcher.drain();
  EXPECT_EQ(low_runs.load(), 0);
  EXPECT_EQ(high_runs.load(), 1);
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 1u);
}

TEST(AdmissionTest, BlockPolicyIsLossless) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kBlock;
  opts.total_capacity = 2;
  DiasDispatcher bounded({0.0}, opts);
  std::atomic<int> runs{0};
  for (int i = 0; i < 16; ++i) {
    bounded.submit(0, [&](double) {
      ++runs;
      std::this_thread::sleep_for(1ms);
    });
  }
  const auto records = bounded.drain();
  EXPECT_EQ(runs.load(), 16);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 16u);
}

TEST(AdmissionTest, FailingJobGetsTerminalFailedOutcome) {
  DiasDispatcher dispatcher({0.0});
  dispatcher.submit(0, [](double) { throw std::runtime_error("boom"); });
  dispatcher.submit(0, [](double) {});
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kFailed), 1u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 1u);
  for (const auto& r : records) {
    if (r.outcome == JobOutcome::kFailed) {
      EXPECT_EQ(r.error, "boom");
    }
  }
}

TEST(AdmissionTest, ContextJobSeesThetaPriorityAndLiveToken) {
  DiasDispatcher dispatcher({0.4, 0.1});
  std::atomic<bool> saw{false};
  dispatcher.submit(1, DiasDispatcher::ContextJobFn(
                           [&](const DiasDispatcher::JobContext& ctx) {
                             EXPECT_DOUBLE_EQ(ctx.theta, 0.1);
                             EXPECT_EQ(ctx.priority, 1u);
                             EXPECT_FALSE(ctx.token.cancelled());
                             saw = true;
                           }));
  dispatcher.drain();
  EXPECT_TRUE(saw.load());
}

TEST(AdmissionTest, QueuedJobPastDeadlineIsCancelledWithoutRunning) {
  DispatcherOptions opts;
  opts.classes = {ClassPolicy{0, 0.05}};  // 50 ms response deadline
  DiasDispatcher dispatcher({0.0}, opts);
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  dispatcher.submit(0, [&](double) { ran = true; });
  std::this_thread::sleep_for(80ms);  // the queued job's deadline passes
  release = true;
  const auto records = dispatcher.drain();
  EXPECT_FALSE(ran.load());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCancelled), 1u);
  for (const auto& r : records) {
    if (r.outcome == JobOutcome::kCancelled) {
      EXPECT_EQ(r.error, "deadline exceeded before start");
      EXPECT_DOUBLE_EQ(r.execution_s(), 0.0);
    }
  }
}

TEST(AdmissionTest, RunningJobPastDeadlineIsCancelledCooperatively) {
  DispatcherOptions opts;
  opts.classes = {ClassPolicy{0, 0.05}};
  DiasDispatcher dispatcher({0.0}, opts);
  std::atomic<int> polls{0};
  dispatcher.submit(0, DiasDispatcher::ContextJobFn(
                           [&](const DiasDispatcher::JobContext& ctx) {
                             // Simulates an engine stage loop: work in small
                             // slices, poll the token between them.
                             for (int i = 0; i < 10000; ++i) {
                               std::this_thread::sleep_for(1ms);
                               ++polls;
                               ctx.token.throw_if_cancelled("slice");
                             }
                           }));
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, JobOutcome::kCancelled);
  EXPECT_GT(polls.load(), 0);
  EXPECT_LT(polls.load(), 10000);
  // The job stopped near its 50 ms deadline, far before the 10 s runtime.
  EXPECT_LT(records[0].response_s(), 5.0);
}

TEST(AdmissionTest, DeadlineDoesNotFireForFastJobs) {
  DispatcherOptions opts;
  opts.classes = {ClassPolicy{0, 10.0}};
  DiasDispatcher dispatcher({0.0}, opts);
  for (int i = 0; i < 8; ++i) {
    dispatcher.submit(0, [](double) { std::this_thread::sleep_for(1ms); });
  }
  const auto records = dispatcher.drain();
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 8u);
}

TEST(AdmissionTest, SetThetaAppliesToSubsequentJobs) {
  DiasDispatcher dispatcher({0.1});
  std::vector<double> seen;
  std::mutex mutex;
  dispatcher.submit(0, [&](double theta) {
    std::lock_guard lock(mutex);
    seen.push_back(theta);
  });
  dispatcher.drain();
  dispatcher.set_theta(0, 0.5);
  EXPECT_DOUBLE_EQ(dispatcher.theta(0), 0.5);
  dispatcher.submit(0, [&](double theta) {
    std::lock_guard lock(mutex);
    seen.push_back(theta);
  });
  const auto records = dispatcher.drain();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.1);
  EXPECT_DOUBLE_EQ(seen[1], 0.5);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].theta, 0.5);
  EXPECT_THROW(dispatcher.set_theta(0, 1.5), dias::precondition_error);
  EXPECT_THROW(dispatcher.set_theta(7, 0.0), dias::precondition_error);
}

TEST(AdmissionTest, LoadSnapshotCountsOutcomesAndDepths) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.classes = {ClassPolicy{1, std::numeric_limits<double>::infinity()},
                  ClassPolicy{}};
  DiasDispatcher dispatcher({0.0, 0.0}, opts);
  std::atomic<bool> release{false};
  dispatcher.submit(1, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  dispatcher.submit(0, [](double) {});
  dispatcher.submit(0, [](double) {});  // class-0 cap 1 -> shed
  {
    const auto snap = dispatcher.load_snapshot();
    ASSERT_EQ(snap.classes.size(), 2u);
    EXPECT_EQ(snap.classes[0].arrivals, 2u);
    EXPECT_EQ(snap.classes[0].queue_depth, 1u);
    EXPECT_EQ(snap.classes[0].shed, 1u);
    EXPECT_EQ(snap.classes[1].arrivals, 1u);
    EXPECT_EQ(snap.total_queue_depth(), 1u);
    EXPECT_GT(snap.uptime_s, 0.0);
  }
  release = true;
  dispatcher.drain();
  const auto snap = dispatcher.load_snapshot();
  EXPECT_EQ(snap.classes[0].completed, 1u);
  EXPECT_EQ(snap.classes[1].completed, 1u);
  EXPECT_EQ(snap.total_queue_depth(), 0u);
  EXPECT_GT(snap.busy_s, 0.0);
  EXPECT_LE(snap.busy_s, snap.uptime_s + 1e-6);
}

TEST(AdmissionTest, ObservabilityCountsShedCancelledFailed) {
  obs::Registry reg;
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.classes = {ClassPolicy{1, 0.05}};
  DiasDispatcher dispatcher({0.0}, opts);
  dispatcher.attach_observability(&reg, nullptr);
  std::atomic<bool> release{false};
  dispatcher.submit(0, [&](double) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  std::this_thread::sleep_for(20ms);
  dispatcher.submit(0, [](double) {});   // queued, will expire (50 ms deadline)
  dispatcher.submit(0, [](double) {});   // cap 1 -> shed
  std::this_thread::sleep_for(80ms);
  release = true;
  dispatcher.drain();
  dispatcher.submit(0, [](double) { throw std::runtime_error("x"); });
  dispatcher.drain();
  EXPECT_EQ(reg.counter("dispatcher.class0.shed").value(), 1u);
  EXPECT_EQ(reg.counter("dispatcher.class0.cancelled").value(), 1u);
  EXPECT_EQ(reg.counter("dispatcher.class0.failed").value(), 1u);
  EXPECT_GE(reg.counter("dispatcher.class0.completed").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("dispatcher.class0.queue_depth").value(), 0.0);
}

// Satellite (a): drain() ordering is documented as (completion_s,
// arrival_s, seq). Zero-duration jobs submitted concurrently with drain()
// must come back in a stable, reproducible order.
TEST(AdmissionTest, DrainOrderIsStableForZeroDurationJobs) {
  DiasDispatcher dispatcher({0.0});
  constexpr std::size_t kJobs = 50;
  for (int round = 0; round < 10; ++round) {
    // Drain overlaps a live burst of zero-duration jobs: drain() may
    // return between submissions, in several batches.
    std::thread submitter([&] {
      for (std::size_t i = 0; i < kJobs; ++i) {
        dispatcher.submit(0, [](double) {});  // zero-duration
      }
    });
    std::vector<DiasDispatcher::JobRecord> all;
    while (all.size() < kJobs) {
      const auto batch = dispatcher.drain();
      for (std::size_t i = 1; i < batch.size(); ++i) {
        const auto& a = batch[i - 1];
        const auto& b = batch[i];
        EXPECT_LE(std::tie(a.completion_s, a.arrival_s, a.seq),
                  std::tie(b.completion_s, b.arrival_s, b.seq))
            << "drain order violated at index " << i;
      }
      // Zero-duration same-class jobs run FCFS, so seq stays monotone
      // even when completion timestamps collide.
      for (std::size_t i = 1; i < batch.size(); ++i) {
        EXPECT_LT(batch[i - 1].seq, batch[i].seq);
      }
      all.insert(all.end(), batch.begin(), batch.end());
    }
    submitter.join();
    EXPECT_EQ(all.size(), kJobs);
  }
}

// Satellite (b): a throwing job must not wedge the sprint governor — the
// RAII guard closes the job_started/job_finished pair on unwind, so the
// next job can still sprint.
TEST(AdmissionTest, ThrowingJobDoesNotWedgeSprintGovernor) {
  engine::ThreadPool pool(2, 2);
  runtime::SprintGovernorConfig cfg;
  cfg.enabled = true;
  cfg.budget.base_power_w = 180.0;
  cfg.budget.sprint_power_w = 270.0;
  cfg.budget.budget_joules = 1e9;
  cfg.budget.budget_cap_joules = 1e9;
  cfg.timeout_s = {0.02};
  runtime::SprintGovernor governor(cfg, pool);

  DiasDispatcher dispatcher({0.0});
  dispatcher.attach_sprint_governor(&governor);
  // Job 1 sprints, then throws mid-boost.
  dispatcher.submit(0, [&](double) {
    while (!governor.sprinting()) std::this_thread::sleep_for(1ms);
    throw std::runtime_error("mid-sprint failure");
  });
  // Job 2 must still be able to start and sprint (guard re-armed the
  // governor; the leaked lease would otherwise trip job_started).
  dispatcher.submit(0, [&](double) {
    while (!governor.sprinting()) std::this_thread::sleep_for(1ms);
  });
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kFailed), 1u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 1u);
  EXPECT_FALSE(governor.sprinting());
  EXPECT_EQ(pool.active_workers(), 2u);  // lease returned both times
  EXPECT_EQ(governor.sprints_granted(), 2u);
  // The failed job still carries its boost window.
  for (const auto& r : records) {
    if (r.outcome == JobOutcome::kFailed) {
      EXPECT_GT(r.sprint_s(), 0.0);
    }
  }
}

TEST(AdmissionTest, OptionValidation) {
  DispatcherOptions bad_deadline;
  bad_deadline.classes = {ClassPolicy{0, 0.0}};
  EXPECT_THROW(DiasDispatcher({0.0}, bad_deadline), dias::precondition_error);
  DispatcherOptions too_many;
  too_many.classes = {ClassPolicy{}, ClassPolicy{}};
  EXPECT_THROW(DiasDispatcher({0.0}, too_many), dias::precondition_error);
  DispatcherOptions bad_alpha;
  bad_alpha.memory_profile_alpha = 0.0;
  EXPECT_THROW(DiasDispatcher({0.0}, bad_alpha), dias::precondition_error);
}

// --- memory-aware admission (ISSUE 6) --------------------------------------

TEST(AdmissionTest, MemoryCapacityShedsOnAggregateFootprint) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kShedOldestLowest;
  opts.memory_capacity_bytes = 1000;
  DiasDispatcher dispatcher({0.0, 0.0}, opts);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      /*memory_bytes=*/400);
  while (!started.load()) std::this_thread::sleep_for(1ms);

  std::atomic<int> survivors{0};
  // Two queued low-priority jobs fill the budget: 400 running + 300 + 300.
  dispatcher.submit(0, [&](double) { ++survivors; }, 300);
  dispatcher.submit(0, [&](double) { ++survivors; }, 300);
  // A 600-byte high-priority arrival doesn't fit until BOTH queued jobs go:
  // the memory cap, unlike the depth cap, can claim several victims.
  EXPECT_EQ(dispatcher.submit(1, [&](double) { ++survivors; }, 600),
            Admission::kAdmitted);
  release = true;
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 2u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 2u);
  EXPECT_EQ(survivors.load(), 1);  // only the high-priority newcomer ran

  // All accounted memory is released at the terminal outcomes.
  const auto snap = dispatcher.load_snapshot();
  EXPECT_EQ(snap.memory_in_use_bytes, 0u);
  EXPECT_EQ(snap.memory_capacity_bytes, 1000u);
}

TEST(AdmissionTest, InfeasibleFootprintRejectedWithoutSheddingQueue) {
  // REVIEW fix regression: when the newcomer can never fit — the running
  // job's unreclaimable footprint alone exceeds what the capacity leaves —
  // kShedOldestLowest must reject it up front instead of evicting every
  // queued job (including zero-footprint ones) and rejecting it anyway.
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kShedOldestLowest;
  opts.memory_capacity_bytes = 1000;
  DiasDispatcher dispatcher({0.0, 0.0}, opts);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      /*memory_bytes=*/600);
  while (!started.load()) std::this_thread::sleep_for(1ms);

  std::atomic<int> survivors{0};
  dispatcher.submit(0, [&](double) { ++survivors; }, 200);
  // Undeclared footprint: the class profile was seeded by the 600-byte
  // declaration at submit time (cold-start fix), so this job is accounted
  // at 600 bytes — 800 in use + 600 can never fit even after shedding the
  // 200-byte queued job (600 running + 600 > 1000), so it too is rejected
  // up front with the queue intact.
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++survivors; }, 0),
            Admission::kRejected);

  // 900 bytes can never fit either: shedding the queued job still leaves
  // the 600-byte running job, and 600 + 900 > 1000.
  EXPECT_EQ(dispatcher.submit(1, [&](double) { ++survivors; }, 900),
            Admission::kRejected);

  release = true;
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 4u);
  // Only the infeasible newcomers were shed; the queue survived intact.
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 2u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 2u);
  EXPECT_EQ(survivors.load(), 1);
}

TEST(AdmissionTest, OversizedJobAdmittedWhenNothingElseHoldsMemory) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.memory_capacity_bytes = 100;
  DiasDispatcher dispatcher({0.0}, opts);
  std::atomic<int> runs{0};
  // Over budget on its own — but rejecting it could never help, so it runs.
  EXPECT_EQ(dispatcher.submit(0, [&](double) { ++runs; }, 10000),
            Admission::kAdmitted);
  const auto records = dispatcher.drain();
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 1u);
}

TEST(AdmissionTest, ProfiledFootprintFeedsAdmissionForUndeclaredJobs) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.memory_capacity_bytes = 1500;
  opts.memory_profile_alpha = 0.5;
  DiasDispatcher dispatcher({0.0}, opts);

  // Seed the class profile: a completed job that declared 1000 bytes.
  dispatcher.submit(0, [](double) {}, 1000);
  dispatcher.drain();
  EXPECT_EQ(dispatcher.load_snapshot().classes[0].profiled_memory_bytes, 1000u);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      1000);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  // Undeclared submission is accounted at the learned 1000-byte profile:
  // 1000 running + 1000 profiled > 1500 capacity.
  EXPECT_EQ(dispatcher.submit(0, [](double) {}), Admission::kRejected);
  release = true;
  dispatcher.drain();
}

// Satellite (ISSUE 7): the cold-start window. The profile used to be fed
// only at *completion*, so while the first declaring job of a class was
// still queued or running, undeclared jobs of the class were admitted with
// a near-zero estimate. The profile is now seeded from the first declared
// sample at submission time, closing the window before the job ever runs.
TEST(AdmissionTest, ProfileSeededAtSubmitClosesColdStartWindow) {
  DispatcherOptions opts;
  opts.admission = AdmissionPolicy::kReject;
  opts.memory_capacity_bytes = 1500;
  DiasDispatcher dispatcher({0.0}, opts);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      1000);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  // The 1000-byte declaration has NOT completed, yet it already seeded the
  // class profile, so an undeclared job is accounted at 1000 bytes:
  // 1000 running + 1000 profiled > 1500 capacity.
  EXPECT_EQ(dispatcher.load_snapshot().classes[0].profiled_memory_bytes, 1000u);
  EXPECT_EQ(dispatcher.submit(0, [](double) {}), Admission::kRejected);
  release = true;
  const auto records = dispatcher.drain();
  EXPECT_EQ(count_outcome(records, JobOutcome::kShed), 1u);
  EXPECT_EQ(count_outcome(records, JobOutcome::kCompleted), 1u);
  // The completion-time EWMA fold of the same first sample is idempotent.
  EXPECT_EQ(dispatcher.load_snapshot().classes[0].profiled_memory_bytes, 1000u);
}

TEST(AdmissionTest, LoadSnapshotReportsMemoryAccounting) {
  DispatcherOptions opts;
  opts.memory_capacity_bytes = 5000;
  DiasDispatcher dispatcher({0.0}, opts);
  obs::Registry registry;
  dispatcher.attach_observability(&registry, nullptr);

  std::atomic<bool> release{false};
  std::atomic<bool> started{false};
  dispatcher.submit(
      0,
      [&](double) {
        started = true;
        while (!release.load()) std::this_thread::sleep_for(1ms);
      },
      700);
  while (!started.load()) std::this_thread::sleep_for(1ms);
  dispatcher.submit(0, [](double) {}, 200);

  const auto snap = dispatcher.load_snapshot();
  EXPECT_EQ(snap.memory_in_use_bytes, 900u);  // running 700 + queued 200
  EXPECT_EQ(snap.classes[0].queued_memory_bytes, 200u);
  EXPECT_DOUBLE_EQ(registry.gauge("dispatcher.memory_in_use_bytes").value(), 900.0);

  release = true;
  dispatcher.drain();
  EXPECT_EQ(dispatcher.load_snapshot().memory_in_use_bytes, 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("dispatcher.memory_in_use_bytes").value(), 0.0);
}

}  // namespace
}  // namespace dias::core
