#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "analytics/word_count.hpp"
#include "common/error.hpp"
#include "workload/text_corpus.hpp"

namespace dias::core {
namespace {

engine::Engine::Options eng_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 19;
  return o;
}

// A synthetic job whose stage structure and timing we control exactly.
Profiler::JobBody synthetic_job(std::size_t map_parts, std::size_t reduce_parts,
                                int task_ms) {
  return [=](engine::Engine& eng, double theta) {
    std::vector<int> data(map_parts * 10);
    const auto ds = eng.parallelize(std::move(data), map_parts);
    engine::StageOptions map_opts;
    map_opts.name = "synthetic/map";
    map_opts.droppable = true;
    map_opts.drop_ratio_override = theta;
    auto pairs = eng.map_partitions(
        ds,
        [task_ms](const std::vector<int>& part) {
          std::this_thread::sleep_for(std::chrono::milliseconds(task_ms));
          std::vector<std::pair<int, int>> out;
          for (int x : part) out.emplace_back(x % 3, 1);
          return out;
        },
        map_opts);
    engine::StageOptions reduce_opts;
    reduce_opts.name = "synthetic";
    reduce_opts.droppable = false;
    eng.reduce_by_key(pairs, [](int a, int b) { return a + b; }, reduce_parts, reduce_opts);
  };
}

TEST(ProfilerTest, ProfileOnceCapturesStageStructure) {
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  const auto profile = profiler.profile_once(synthetic_job(8, 4, 2), 0.0);
  ASSERT_EQ(profile.stages.size(), 3u);  // map, shuffle, reduce
  EXPECT_EQ(profile.stages[0].kind, engine::EngineStageKind::kMap);
  EXPECT_EQ(profile.stages[0].tasks, 8u);
  EXPECT_EQ(profile.map_tasks(), 8u);
  EXPECT_EQ(profile.reduce_tasks(), 4u);
  // Each map task sleeps ~2 ms.
  EXPECT_GT(profile.mean_map_task_time_s(), 0.0015);
  EXPECT_LT(profile.mean_map_task_time_s(), 0.05);
  EXPECT_GT(profile.total_wall_time_s, 0.0);
}

TEST(ProfilerTest, DropRatioShrinksProfiledTasks) {
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  const auto profile = profiler.profile_once(synthetic_job(10, 4, 1), 0.3);
  EXPECT_EQ(profile.map_tasks(), 7u);
}

TEST(ProfilerTest, BuildClassProfileFeedsTheModel) {
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  const auto profile =
      profiler.build_class_profile(synthetic_job(8, 4, 2), 0.01, 4, /*repetitions=*/2);
  EXPECT_DOUBLE_EQ(profile.arrival_rate, 0.01);
  EXPECT_EQ(profile.slots, 4);
  EXPECT_EQ(profile.map_task_pmf.size(), 8u);
  EXPECT_GT(profile.map_rate, 0.0);
  EXPECT_GT(profile.mean_overhead_theta0, 0.0);
  // The model must accept the profiled inputs end-to-end.
  const auto ph = model::ResponseTimeModel::processing_time(profile, 0.2);
  EXPECT_GT(ph.mean(), 0.0);
  const auto dropped = model::ResponseTimeModel::processing_time(profile, 0.6);
  EXPECT_LT(dropped.mean(), ph.mean());
}

TEST(ProfilerTest, RealWordCountProfile) {
  workload::TextCorpusParams params;
  params.posts = 600;
  params.seed = 23;
  const auto corpus = workload::generate_text_corpus("profiled", params);
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  const auto body = [&corpus](engine::Engine& e, double theta) {
    const auto ds = e.parallelize(corpus.rows, 20);
    analytics::word_count(e, ds, 8, theta);
  };
  const auto profile = profiler.build_class_profile(body, 0.005, 4, 1);
  EXPECT_EQ(profile.map_task_pmf.size(), 20u);
  EXPECT_GT(profile.map_rate, 0.0);
  EXPECT_GT(profile.mean_overhead_theta0, 0.0);
}

TEST(ProfilerTest, FitWaveDistributionUsesMeasuredWallTime) {
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  // 12 tasks of ~3 ms on 4 workers = 3 waves; fitting against 4 slots the
  // wave mean must be the measured stage wall / 3, i.e. >= one task time.
  const auto profile = profiler.profile_once(synthetic_job(12, 4, 3), 0.0);
  const auto wave = profiler.fit_wave_distribution(profile, 4);
  double map_wall = 0.0;
  for (const auto& s : profile.stages) {
    if (s.kind == engine::EngineStageKind::kMap) map_wall += s.stage_wall_time_s;
  }
  EXPECT_NEAR(wave.mean(), map_wall / 3.0, 1e-9);
  EXPECT_GE(wave.mean(), 0.9 * profile.mean_map_task_time_s());
  EXPECT_GT(wave.phases(), 0u);
  // Wave scv is concentrated relative to the task scv.
  EXPECT_LE(wave.scv(), std::max(profile.map_task_scv(), 4e-3));
}

TEST(ProfilerTest, Validation) {
  engine::Engine eng(eng_opts());
  Profiler profiler(eng);
  EXPECT_THROW(profiler.profile_once(synthetic_job(4, 2, 1), 1.0), dias::precondition_error);
  EXPECT_THROW(
      profiler.build_class_profile(synthetic_job(4, 2, 1), 0.01, 4, 0),
      dias::precondition_error);
}

}  // namespace
}  // namespace dias::core
