// End-to-end DiAS pipeline: every subsystem in one run.
//
//   $ ./end_to_end_pipeline
//
//   1. synthesize StackExchange-like dumps and load them into the
//      HDFS-like block store;
//   2. profile the word-count job on the real engine at theta = 0 and 0.9
//      (the paper's offline parameterization) to build a model profile;
//   3. let the deflator pick drop ratios and a sustainable sprint timeout
//      from an accuracy tolerance and a latency cap;
//   4. execute a two-priority stream of *real* jobs through the DiAS
//      dispatcher with the planned thetas, reading from the block store
//      (dropped tasks skip their block fetches);
//   5. project cluster-scale latency/energy with the simulator.
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <vector>

#include "analytics/word_count.hpp"
#include "core/controller.hpp"
#include "core/deflator.hpp"
#include "core/dispatcher.hpp"
#include "core/profiler.hpp"
#include "storage/engine_io.hpp"
#include "workload/text_corpus.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace dias;

  // --- 1. data into the block store ----------------------------------------
  const auto root = std::filesystem::temp_directory_path() / "dias_pipeline_store";
  std::filesystem::remove_all(root);
  storage::BlockStoreOptions store_opts;
  store_opts.root = root;
  store_opts.block_bytes = 16 * 1024;
  store_opts.replication = 2;
  storage::BlockStore store(store_opts);

  std::vector<std::string> sites;
  for (int i = 0; i < 6; ++i) {
    workload::TextCorpusParams params;
    params.posts = 2000;
    params.vocabulary = 2000;
    params.drift_segments = 8;
    params.seed = 200 + static_cast<std::uint64_t>(i);
    const auto corpus =
        workload::generate_text_corpus("site" + std::to_string(i), params);
    const auto meta = store.write_lines(corpus.site, corpus.rows);
    sites.push_back(corpus.site);
    if (i == 0) {
      std::printf("stored %s: %zu lines, %zu blocks, %zu bytes (x%d replicas)\n",
                  meta.name.c_str(), meta.lines, meta.blocks, meta.bytes,
                  store_opts.replication);
    }
  }

  // --- 2. offline profiling -------------------------------------------------
  engine::Engine::Options eng_opts;
  eng_opts.workers = 4;
  engine::Engine eng(eng_opts);
  core::Profiler profiler(eng);
  const auto job_body = [&](engine::Engine& e, double theta) {
    const auto ds = storage::read_lines_dataset(e, store, sites[0], theta);
    analytics::word_count(e, ds, 16, theta);
  };
  auto profile = profiler.build_class_profile(job_body, /*arrival_rate=*/1.0,
                                              /*slots=*/4, /*repetitions=*/2);
  std::printf("\nprofiled job: %zu map tasks, mean map task %.2f ms, overhead "
              "%.2f -> %.2f ms (theta 0 -> 0.9)\n",
              profile.map_task_pmf.size(), 1000.0 / profile.map_rate,
              1000.0 * profile.mean_overhead_theta0,
              1000.0 * profile.mean_overhead_theta90);

  // --- 3. deflator plan ------------------------------------------------------
  // Load the profiled queue at ~80% with a 5:1 low:high mix, so the
  // latency-cap search has queueing to work with.
  const double mean_exec =
      model::ResponseTimeModel::processing_time(profile, 0.0).mean();
  profile.arrival_rate = 0.8 / mean_exec * (5.0 / 6.0);
  auto high_profile = profile;
  high_profile.arrival_rate = 0.8 / mean_exec * (1.0 / 6.0);
  core::Deflator::Options dopts;
  dopts.sprint_speedup = 2.5;
  dopts.timeout_grid = {0.0, 0.5, 2.0};
  dopts.sprint_config.budget_joules = 22000.0;
  dopts.sprint_config.replenish_watts = 24.0;
  core::Deflator deflator({profile, high_profile},
                          core::AccuracyProfile::paper_word_count(), dopts);
  std::vector<core::ClassConstraint> constraints(2);
  constraints[0].max_error_percent = 15.0;  // low class: tolerate 15% error
  constraints[1].max_error_percent = 0.0;   // high class: exact
  // Cap the high class at 97% of its theta = 0 prediction.
  const auto relaxed = deflator.plan(constraints);
  if (!relaxed.feasible) {
    std::printf("workload infeasible\n");
    return 1;
  }
  constraints[1].max_mean_response_s =
      0.97 * relaxed.prediction.per_class[1].mean_response;
  const auto plan = deflator.plan(constraints);
  if (!plan.feasible) {
    std::printf("no feasible plan under the latency cap\n");
    return 1;
  }
  std::printf("deflator plan: theta = {%.2f, %.2f}, predicted error {%.1f%%, %.1f%%}, "
              "sprint timeout %.1f s\n",
              plan.theta[0], plan.theta[1], plan.predicted_error[0],
              plan.predicted_error[1], plan.sprint_timeout_s[1]);

  // --- 4. real execution through the DiAS dispatcher -------------------------
  store.reset_io_stats();
  core::DiasDispatcher dispatcher(plan.theta);
  std::mutex io_mutex;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::size_t priority = i % 3 == 0 ? 1 : 0;
    const std::string site = sites[i];
    dispatcher.submit(priority, [&, site, priority](double theta) {
      const auto ds = storage::read_lines_dataset(eng, store, site, theta);
      const auto result = analytics::word_count(eng, ds, 16, theta);
      std::lock_guard lock(io_mutex);
      std::printf("  %-6s %-5s theta=%.2f  %zu words  %6.1f ms\n", site.c_str(),
                  priority == 1 ? "high" : "low", theta, result.counts.size(),
                  1000.0 * result.duration_s);
    });
  }
  const auto records = dispatcher.drain();
  const auto io = store.io_stats();
  std::printf("block fetches: %llu blocks / %llu bytes (dropped tasks skipped "
              "their reads)\n",
              static_cast<unsigned long long>(io.blocks_read),
              static_cast<unsigned long long>(io.bytes_read));
  std::printf("dispatched %zu jobs, all non-preemptive, zero evictions\n",
              records.size());

  // --- 5. cluster-scale projection -------------------------------------------
  workload::ClassWorkloadParams low;
  low.arrival_rate = 0.009;
  low.mean_size_mb = 1117.0;
  low.map_seconds_per_mb = 0.9;
  low.reduce_seconds_per_mb = 0.18;
  auto high = low;
  high.arrival_rate = 0.001;
  high.mean_size_mb = 473.0;
  std::vector<workload::ClassWorkloadParams> classes{low, high};
  workload::scale_rates_to_load(classes, 20, 0.8);
  workload::TraceGenerator gen(11);
  const auto trace = gen.text_trace(classes, 8000);

  core::ExperimentConfig sim_config;
  sim_config.policy = core::Policy::kDias;
  sim_config.slots = 20;
  sim_config.theta = plan.theta;
  sim_config.sprint.speedup = 2.5;
  sim_config.sprint.timeout_s = {std::numeric_limits<double>::infinity(),
                                 plan.sprint_timeout_s[1]};
  sim_config.task_time_family = cluster::TaskTimeFamily::kExponential;
  sim_config.warmup_jobs = 800;
  const auto projected = core::run_experiment(sim_config, trace);
  const auto baseline =
      core::run_experiment([&] {
        auto c = sim_config;
        c.policy = core::Policy::kPreemptive;
        return c;
      }(), trace);
  std::printf("\ncluster projection (20 slots, 80%% load): DiAS vs P\n");
  for (std::size_t k : {1u, 0u}) {
    std::printf("  %-5s mean %.1f s vs %.1f s (%+.0f%%)\n", k == 1 ? "high" : "low",
                projected.per_class[k].response.mean(),
                baseline.per_class[k].response.mean(),
                100.0 * (projected.per_class[k].response.mean() -
                         baseline.per_class[k].response.mean()) /
                    baseline.per_class[k].response.mean());
  }
  std::printf("  energy %.1f vs %.1f MJ, waste %.1f%% vs %.1f%%\n",
              projected.energy_joules / 1e6, baseline.energy_joules / 1e6,
              100.0 * projected.resource_waste(), 100.0 * baseline.resource_waste());

  std::filesystem::remove_all(root);
  return 0;
}
