// Capacity planner: the paper's Section 5.2.1 use case, automated.
//
//   $ ./capacity_planner
//
// "Tolerate 30% accuracy loss for low-priority jobs while keeping
// high-priority mean latency under a cap, with no high-priority accuracy
// loss." The deflator consults the offline accuracy profile (Figure 6)
// and the stochastic response-time model (Section 4) to pick the minimum
// drop ratio that satisfies both constraints; the cluster simulator then
// verifies the choice.
#include <cstdio>
#include <vector>

#include "core/controller.hpp"
#include "core/deflator.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace dias;

  // Workload profile: the reference 9:1 two-priority setup.
  workload::ClassWorkloadParams low;
  low.arrival_rate = 0.009;
  low.mean_size_mb = 1117.0;
  low.map_seconds_per_mb = 0.9;
  low.reduce_seconds_per_mb = 0.18;
  low.label = "low";
  auto high = low;
  high.arrival_rate = 0.001;
  high.mean_size_mb = 473.0;
  high.label = "high";
  std::vector<workload::ClassWorkloadParams> classes{low, high};
  workload::scale_rates_to_load(classes, 20, 0.8);

  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(workload::to_model_profile(c, 20));

  // Offline profiling: the accuracy-loss curve of the analysis (Figure 6).
  const auto accuracy = core::AccuracyProfile::paper_word_count();
  core::Deflator::Options dopts;
  dopts.estimate_tails = true;  // the paper reports mean AND p95
  core::Deflator deflator(profiles, accuracy, dopts);

  // Constraints: high class exact with a mean-latency cap; low class may
  // lose up to 30% accuracy.
  const auto exact_pred = model::ResponseTimeModel::predict(
      profiles, std::vector<double>{0.0, 0.0}, model::Discipline::kNonPreemptive);
  const double cap = 0.95 * exact_pred.per_class[1].mean_response;
  std::printf("high-priority mean response at theta=0: %.1f s; cap: %.1f s\n",
              exact_pred.per_class[1].mean_response, cap);

  std::vector<core::ClassConstraint> constraints(2);
  constraints[0].max_error_percent = 30.0;  // low class
  constraints[1].max_error_percent = 0.0;   // high class: exact
  constraints[1].max_mean_response_s = cap;

  const auto plan = deflator.plan(constraints);
  if (!plan.feasible) {
    std::printf("no feasible plan under these constraints\n");
    return 1;
  }
  std::printf("deflator plan: theta = {low: %.2f, high: %.2f}; predicted error "
              "{%.1f%%, %.1f%%}\n",
              plan.theta[0], plan.theta[1], plan.predicted_error[0],
              plan.predicted_error[1]);
  std::printf("predicted mean response: high %.1f s, low %.1f s\n",
              plan.prediction.per_class[1].mean_response,
              plan.prediction.per_class[0].mean_response);
  if (!plan.predicted_p95.empty()) {
    std::printf("predicted p95 response:  high %.1f s, low %.1f s\n",
                plan.predicted_p95[1], plan.predicted_p95[0]);
  }

  // Latency/accuracy frontier for the low class, for the operator to see
  // the alternatives (the paper suggests weighting to select among them).
  std::printf("\nlow-class frontier (theta, error%%, predicted mean response):\n");
  for (const auto& point : deflator.frontier(0, std::vector<double>{0.0, 0.0})) {
    std::printf("  theta %.2f  error %5.1f%%  response %7.1f s\n", point.theta,
                point.error_percent, point.mean_response_s);
  }

  // Verify the plan by simulation.
  workload::TraceGenerator gen(5);
  for (auto& c : classes) c.size_scv = 0.0;
  const auto trace = gen.text_trace(classes, 12000);
  core::ExperimentConfig config;
  config.policy = core::Policy::kDifferentialApprox;
  config.slots = 20;
  config.theta = plan.theta;
  config.task_time_family = cluster::TaskTimeFamily::kExponential;
  config.warmup_jobs = 1200;
  const auto sim = core::run_experiment(config, trace);
  std::printf("\nsimulated means with the plan: high %.1f s (cap %.1f), low %.1f s\n",
              sim.per_class[1].response.mean(), cap, sim.per_class[0].response.mean());
  std::printf("cap %s by simulation\n",
              sim.per_class[1].response.mean() <= 1.05 * cap ? "confirmed" : "violated");
  return 0;
}
