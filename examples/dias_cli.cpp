// dias_cli: command-line experiment runner for the simulated cluster.
//
//   $ ./dias_cli --policy dias --theta 0.2,0 --load 0.8 --jobs 10000
//
// A downstream-user-facing driver: describe a two-priority workload with
// flags, run any of the paper's policies, and get per-class latency, waste
// and energy (optionally as CSV for scripting).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analytics/word_count.hpp"
#include "chaos/chaos.hpp"
#include "core/controller.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/adaptive_planner.hpp"
#include "runtime/overload_controller.hpp"
#include "runtime/sprint_governor.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"
#include "workload/text_corpus.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace dias;

void usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --policy <p|np|da|nps|dias>   scheduling policy (default da)\n"
      "  --theta <low,high,...>        per-class drop ratios (default 0.2,0)\n"
      "  --load <x>                    target utilization in (0,1) (default 0.8)\n"
      "  --jobs <n>                    trace length (default 10000)\n"
      "  --slots <n>                   computing slots (default 20)\n"
      "  --mix <low:high>              arrival mix (default 9:1)\n"
      "  --sprint-timeout <s>          high-class sprint timeout (default 0)\n"
      "  --sprint-budget <J>           sprint budget in Joules (default inf)\n"
      "  --seed <n>                    RNG seed (default 1)\n"
      "  --csv                         machine-readable output\n"
      "  --metrics-out <file>          write a metrics snapshot (JSON) after the run\n"
      "  --trace-out <file>            write the structured trace (JSONL) after the run\n"
      "  --help                        this text\n"
      "engine mode (in-process MapReduce with fault tolerance):\n"
      "  --engine-wordcount            run an approximate word count on the real\n"
      "                                engine instead of the cluster simulation;\n"
      "                                uses the first --theta value as drop ratio\n"
      "  --rows <n>                    corpus rows (default 2000)\n"
      "  --partitions <n>              input partitions / map tasks (default 40)\n"
      "  --fault-rate <p>              injected per-attempt task failure prob (default 0)\n"
      "  --straggler-rate <p>          injected straggler probability (default 0)\n"
      "  --straggler-delay-ms <ms>     injected straggler delay (default 50)\n"
      "  --max-attempts <n>            attempts per task before degradation (default 3)\n"
      "  --retry-backoff-ms <ms>       linear backoff between attempts (default 0)\n"
      "  --speculation                 speculatively re-execute stage-tail stragglers\n"
      "  --fault-all-stages            inject into non-droppable stages too (a dead\n"
      "                                task there aborts the job with TaskFailedError)\n"
      "  --fault-seed <n>              injector seed (default 99)\n"
      "  --chaos-seed <n>              chaos plane seed (default 0); same seed =>\n"
      "                                the same injection decisions\n"
      "  --chaos-rate <p>              arm every chaos injection point with throw\n"
      "                                faults at rate p (spill writes degrade via\n"
      "                                the circuit breaker, tasks retry)\n"
      "  --chaos-points <spec>         full chaos grammar, e.g.\n"
      "                                'spill.write=throw:0.2,pool.wave=stall:0.05:20'\n"
      "                                (shapes: throw|stall|corrupt; selectors may\n"
      "                                end in '*')\n"
      "  --shuffle-budget-bytes <n>    hard cap on resident shuffle memory; overflow\n"
      "                                spills through a BlockStore and the results\n"
      "                                stay byte-identical (0 = unbounded, default)\n"
      "  --spill-dir <path>            BlockStore root for spilled shuffle segments\n"
      "                                (default: a throwaway dir under /tmp)\n"
      "  --adaptive-plan               let an AdaptivePlanner read the engine's own\n"
      "                                metrics and re-plan each stage (combiner,\n"
      "                                partition width, single-thread route) over\n"
      "                                three rounds; prints the per-stage decisions\n"
      "runtime sprinting (elastic pool + sprint governor on the real engine):\n"
      "  --runtime-sprint              run bursty two-class traffic through the\n"
      "                                real dispatcher; the high class sprints by\n"
      "                                leasing the engine's reserve worker slots\n"
      "                                after --sprint-timeout, spending\n"
      "                                --sprint-budget Joules\n"
      "  --reserve-workers <n>         dormant slots the governor may lease (default 6)\n"
      "  --sprint-replenish <W>        budget replenish rate in Watts (default 0)\n"
      "  --bursts <n>                  arrival bursts to submit (default 8)\n"
      "overload protection (bounded admission + deadlines + adaptive deflation):\n"
      "  --runtime-overload            drive a sustained two-class burst through the\n"
      "                                real dispatcher and report per-class response\n"
      "                                times and terminal outcomes\n"
      "  --admission <block|reject|shed>  policy when a class queue is full (default shed)\n"
      "  --queue-cap <n>               per-class queue capacity, 0 = unbounded (default 8)\n"
      "  --deadline <low,high,...>     per-class deadlines in seconds, inf = none\n"
      "                                (default inf for every class)\n"
      "  --adaptive                    attach the closed-loop OverloadController\n"
      "                                (measured rates re-run the deflator; theta\n"
      "                                escalates up to --theta-ceiling)\n"
      "  --theta-ceiling <low,high,...>  per-class ceilings for --adaptive (default 0.6,0.3)\n"
      "  --overload-jobs <n>           jobs to submit (default 150)\n"
      "  --overload-period-ms <ms>     submit period; ~10 is a 2x burst (default 10)\n"
      "  --memory-capacity-mb <n>      dispatcher memory budget over queued + running\n"
      "                                jobs; 0 = unbounded (default 0). With\n"
      "                                --adaptive the controller treats ~80%%/40%% of\n"
      "                                this as its memory pressure band\n"
      "  --job-memory-mb <low,high>    declared per-class job footprints in MB\n"
      "                                (default 0,0 = undeclared)\n"
      "  --lanes <n>                   striped submission lanes in the dispatcher;\n"
      "                                0 = one per core, 1 = the single-lane plane\n"
      "                                (default 0)\n"
      "  --tenants <n>                 multiplex submissions over n tenants with the\n"
      "                                fair-share ledger enabled (burst credits +\n"
      "                                deflate/deprioritize/shed ladder); 0 = untenanted\n"
      "                                (default 0). With --adaptive, sustained\n"
      "                                over-quota tenants also trigger escalation\n",
      prog);
}

// --engine-wordcount: run the paper's droppable word-count map on the
// in-process engine under injected faults, and show how failed tasks
// degrade into extra approximation (effective theta) instead of job
// failure.
int run_engine_wordcount(double theta, std::size_t rows, std::size_t partitions,
                         std::uint64_t seed, const engine::FaultToleranceOptions& fault,
                         std::size_t shuffle_budget, std::string spill_dir,
                         bool adaptive_plan, bool csv, obs::Registry* metrics,
                         obs::Tracer* tracer) {
  workload::TextCorpusParams params;
  params.posts = rows;
  params.seed = seed;
  const auto corpus = workload::generate_text_corpus("cli", params);

  engine::Engine::Options opts;
  opts.workers = 4;
  opts.seed = seed;
  opts.fault = fault;
  engine::Engine eng(opts);
  // The planner reads the engine's own registry, so --adaptive-plan
  // stands one up even when no --metrics-out sink was requested.
  obs::Registry local_registry;
  obs::Registry* registry = metrics;
  if (adaptive_plan && registry == nullptr) registry = &local_registry;
  eng.attach_observability(registry, tracer);
  std::optional<runtime::AdaptivePlanner> planner;
  if (adaptive_plan) {
    runtime::AdaptivePlannerConfig pcfg;
    pcfg.workers = opts.workers;
    planner.emplace(registry, pcfg, registry, tracer);
  }

  // A finite budget needs somewhere to spill: stand up a BlockStore on the
  // requested directory (or a throwaway one) and attach it as the engine's
  // spill backend.
  std::optional<storage::BlockStore> store;
  std::optional<storage::BlockStoreSpill> spill;
  bool scratch_spill_dir = false;
  if (shuffle_budget > 0) {
    if (spill_dir.empty()) {
      const auto tick = std::chrono::steady_clock::now().time_since_epoch().count();
      spill_dir = (std::filesystem::temp_directory_path() /
                   ("dias_cli_spill_" + std::to_string(tick)))
                      .string();
      scratch_spill_dir = true;
    }
    storage::BlockStoreOptions sopts;
    sopts.root = spill_dir;
    store.emplace(sopts);
    spill.emplace(*store, "wordcount");
    eng.set_spill_backend(&*spill);
  }
  engine::ShuffleOptions shuffle;
  shuffle.memory_budget_bytes = shuffle_budget;

  const auto ds = eng.parallelize(corpus.rows, partitions);

  // With a planner, run three rounds so the metric loop has signals to
  // converge on; the stage log below then shows each round's plan taking
  // effect. Counts are identical across rounds by the determinism
  // contract (see stage_plan.hpp).
  const int rounds = adaptive_plan ? 3 : 1;
  analytics::WordCountResult result;
  try {
    for (int round = 0; round < rounds; ++round) {
      result = analytics::word_count(eng, ds, std::max<std::size_t>(partitions / 4, 1),
                                     theta, shuffle, planner ? &*planner : nullptr);
    }
  } catch (const engine::TaskFailedError& e) {
    std::fprintf(stderr, "job failed: %s\n", e.what());
    if (scratch_spill_dir) std::filesystem::remove_all(spill_dir);
    return 1;
  }

  if (csv) {
    std::printf("stage,total,executed,degraded,attempts,retries,spec_runs,spec_wins,"
                "theta,effective_theta\n");
  } else {
    std::printf("engine word count: %zu rows, %zu partitions, theta %.2f, seed %llu\n",
                corpus.rows.size(), partitions, theta,
                static_cast<unsigned long long>(seed));
    std::printf("  %-18s %6s %6s %6s %6s %6s %5s %5s %7s %7s\n", "stage", "total",
                "run", "dead", "att", "retry", "spec", "wins", "theta", "eff.th");
  }
  for (const auto& s : eng.stage_log()) {
    if (csv) {
      std::printf("%s,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%.4f,%.4f\n", s.name.c_str(),
                  s.total_partitions, s.executed_partitions, s.failed_partition_ids.size(),
                  s.attempts, s.retries, s.speculative_launched, s.speculative_wins,
                  s.applied_drop_ratio, s.effective_drop_ratio);
    } else {
      std::printf("  %-18s %6zu %6zu %6zu %6zu %6zu %5zu %5zu %7.3f %7.3f\n",
                  s.name.c_str(), s.total_partitions, s.executed_partitions,
                  s.failed_partition_ids.size(), s.attempts, s.retries,
                  s.speculative_launched, s.speculative_wins, s.applied_drop_ratio,
                  s.effective_drop_ratio);
    }
  }
  if (csv) {
    std::printf("distinct_words,%zu\nexecuted_fraction,%.4f\nduration_s,%.4f\n",
                result.counts.size(), result.executed_fraction(), result.duration_s);
  } else {
    std::printf("  %zu distinct words, executed fraction %.3f, %.1f ms\n",
                result.counts.size(), result.executed_fraction(),
                1000.0 * result.duration_s);
  }
  if (planner) {
    const auto pstatus = planner->status();
    if (csv) {
      std::printf("planner_decisions,%llu\nplanner_switches,%llu\n",
                  static_cast<unsigned long long>(pstatus.decisions),
                  static_cast<unsigned long long>(pstatus.switches));
    } else {
      std::printf("  adaptive planner: %llu decisions, %llu switches over %d rounds\n",
                  static_cast<unsigned long long>(pstatus.decisions),
                  static_cast<unsigned long long>(pstatus.switches), rounds);
      // Final knob positions, as exported by the planner's own gauges
      // (-1 = undecided / stage default).
      for (const char* stage : {"wordcount/map", "wordcount"}) {
        const std::string prefix = std::string("planner.") + stage + ".";
        const auto gauge = [&](const char* knob) {
          const obs::Gauge* g = registry->find_gauge(prefix + knob);
          return g == nullptr ? -1.0 : g->value();
        };
        std::printf("    %-14s combine=%+.0f single_thread=%.0f partitions=%.0f "
                    "speculate=%+.0f\n",
                    stage, gauge("combine"), gauge("single_thread"), gauge("partitions"),
                    gauge("speculate"));
      }
    }
  }
  if (spill) {
    const auto stats = spill->stats();
    if (csv) {
      std::printf("spill_segments,%llu\nspill_bytes,%llu\n",
                  static_cast<unsigned long long>(stats.segments_written),
                  static_cast<unsigned long long>(stats.bytes_written));
    } else {
      std::printf("  spill: budget %zu B, %llu segments / %llu bytes through %s\n",
                  shuffle_budget,
                  static_cast<unsigned long long>(stats.segments_written),
                  static_cast<unsigned long long>(stats.bytes_written),
                  spill_dir.c_str());
    }
  }
  if (scratch_spill_dir) std::filesystem::remove_all(spill_dir);
  return 0;
}

// --runtime-sprint: bursty two-class traffic on the real stack. Each burst
// is one wide high-priority job plus three narrow low-priority jobs; only
// the high class has a finite Tk, so sprints are differential. Reports
// per-class response times plus the governor's grant/deny/energy ledger.
int run_runtime_sprint(std::size_t bursts, std::size_t reserve, double timeout_s,
                       double budget_j, double replenish_w, bool csv,
                       obs::Registry* metrics, obs::Tracer* tracer) {
  engine::Engine::Options opts;
  opts.workers = 2;
  opts.reserve_workers = reserve;
  engine::Engine eng(opts);

  runtime::SprintGovernorConfig config;
  config.budget.budget_joules = budget_j;
  config.budget.budget_cap_joules = budget_j;
  config.budget.replenish_watts = replenish_w;
  config.timeout_s = {std::numeric_limits<double>::infinity(), timeout_s};
  runtime::SprintGovernor governor(config, eng.pool());
  core::DiasDispatcher dispatcher({0.0, 0.0});
  governor.attach_observability(metrics, tracer);
  dispatcher.attach_observability(metrics, tracer);
  dispatcher.attach_sprint_governor(&governor);

  const auto stage_job = [&eng](std::size_t partitions) {
    std::vector<int> values(partitions);
    for (std::size_t i = 0; i < partitions; ++i) values[i] = static_cast<int>(i);
    auto ds = eng.parallelize(std::move(values), partitions);
    engine::StageOptions sopts;
    sopts.name = "burst";
    sopts.droppable = false;
    eng.map_partitions(
        ds,
        [](const std::vector<int>& part) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          return part;
        },
        sopts);
  };
  for (std::size_t b = 0; b < bursts; ++b) {
    dispatcher.submit(1, [&](double) { stage_job(16); });
    for (int j = 0; j < 3; ++j) dispatcher.submit(0, [&](double) { stage_job(4); });
    std::this_thread::sleep_for(std::chrono::milliseconds(350));
  }
  const auto records = dispatcher.drain();

  std::vector<double> responses[2];
  double sprint_s[2] = {0.0, 0.0};
  for (const auto& r : records) {
    responses[r.priority].push_back(r.response_s());
    sprint_s[r.priority] += r.sprint_s();
  }
  if (csv) {
    std::printf("class,completed,mean_s,p95_s,sprint_s\n");
  } else {
    std::printf("runtime sprinting: %zu bursts, 2+%zu workers, Tk %.3f s, "
                "budget %.1f J, replenish %.1f W\n",
                bursts, reserve, timeout_s, budget_j, replenish_w);
  }
  for (std::size_t k = 2; k-- > 0;) {
    auto& rs = responses[k];
    if (rs.empty()) continue;
    std::sort(rs.begin(), rs.end());
    double mean = 0.0;
    for (double r : rs) mean += r;
    mean /= static_cast<double>(rs.size());
    const double p95 = rs[static_cast<std::size_t>(0.95 * double(rs.size() - 1))];
    if (csv) {
      std::printf("%zu,%zu,%.3f,%.3f,%.3f\n", k, rs.size(), mean, p95, sprint_s[k]);
    } else {
      std::printf("  class %zu (%s): %zu jobs, mean %.3f s, p95 %.3f s, "
                  "sprinted %.3f s\n",
                  k, k == 1 ? "high" : "low", rs.size(), mean, p95, sprint_s[k]);
    }
  }
  if (csv) {
    std::printf("sprints_granted,%zu\nsprints_denied,%zu\nenergy_consumed_j,%.1f\n",
                governor.sprints_granted(), governor.sprints_denied(),
                governor.budget_consumed());
  } else {
    std::printf("  sprints: %zu granted, %zu denied; energy %.1f J consumed, "
                "%.1f J left\n",
                governor.sprints_granted(), governor.sprints_denied(),
                governor.budget_consumed(), governor.budget_level());
  }
  return 0;
}

// --runtime-overload: a sustained two-class burst (alternating low/high
// submissions every period_ms) against the real engine, with per-class
// queue caps, deadlines, and optionally the closed-loop overload
// controller escalating theta from measured arrival rates. Shows every
// terminal outcome — completed / shed / cancelled / failed — per class.
int run_runtime_overload(core::AdmissionPolicy admission, std::size_t queue_cap,
                         std::vector<double> deadlines, bool adaptive,
                         std::vector<double> ceilings, std::size_t jobs,
                         double period_ms, std::size_t memory_capacity_mb,
                         std::vector<double> job_memory_mb, std::size_t lanes,
                         std::size_t tenants, bool csv, obs::Registry* metrics,
                         obs::Tracer* tracer) {
  static constexpr std::size_t kPartitions = 16;
  static constexpr int kTaskMs = 4;
  engine::Engine::Options eopts;
  eopts.workers = 4;
  engine::Engine eng(eopts);

  core::DispatcherOptions dopts;
  dopts.admission = admission;
  dopts.classes.resize(2);
  for (std::size_t k = 0; k < 2; ++k) {
    dopts.classes[k].queue_capacity = queue_cap;
    if (k < deadlines.size()) dopts.classes[k].deadline_s = deadlines[k];
  }
  dopts.memory_capacity_bytes = memory_capacity_mb << 20;
  dopts.lanes = lanes;
  if (tenants > 0) dopts.tenant.enabled = true;
  core::DiasDispatcher dispatcher({0.0, 0.0}, dopts);
  dispatcher.attach_observability(metrics, tracer);

  const auto declared_memory = [&](std::size_t priority) -> std::size_t {
    if (priority >= job_memory_mb.size() || job_memory_mb[priority] <= 0.0) return 0;
    return static_cast<std::size_t>(job_memory_mb[priority] * (1 << 20));
  };

  std::optional<runtime::OverloadController> controller;
  if (adaptive) {
    // Profile both classes at a calm rate; the controller's whole job is
    // to notice the measured rate exceeding it and escalate.
    model::JobClassProfile prof;
    prof.arrival_rate = 2.0;
    prof.slots = 4;
    prof.map_task_pmf.assign(kPartitions, 0.0);
    prof.map_task_pmf.back() = 1.0;
    prof.reduce_task_pmf.assign(1, 1.0);
    prof.map_rate = 1.0 / (kTaskMs * 1e-3);
    prof.reduce_rate = 1e3;
    prof.shuffle_rate = 1e3;
    prof.mean_overhead_theta0 = 5e-3;
    prof.mean_overhead_theta90 = 2e-3;
    core::Deflator deflator({prof, prof}, core::AccuracyProfile::paper_word_count());
    runtime::OverloadControllerConfig ccfg;
    ccfg.sample_period_s = 0.05;
    ccfg.ewma_alpha = 0.5;
    ccfg.queue_depth_high = 6;
    ccfg.queue_depth_low = 2;
    if (memory_capacity_mb > 0) {
      // Memory pressure band at ~80%/40% of the dispatcher's capacity.
      ccfg.memory_high_bytes = (memory_capacity_mb << 20) * 4 / 5;
      ccfg.memory_low_bytes = (memory_capacity_mb << 20) * 2 / 5;
    }
    if (tenants > 0) {
      // Tenant pressure band: a quarter of the tenant population being
      // simultaneously over quota is plant-wide overload.
      ccfg.tenant_overquota_high = std::max<std::size_t>(tenants / 4, 1);
      ccfg.tenant_overquota_low = ccfg.tenant_overquota_high / 2;
    }
    ccfg.min_hold_s = 0.2;
    ccfg.theta_ceiling = std::move(ceilings);
    ccfg.start_thread = true;
    controller.emplace(dispatcher, std::move(deflator),
                       std::vector<core::ClassConstraint>{{40.0, 1e18, 1.0},
                                                          {20.0, 1e18, 1.0}},
                       ccfg, metrics, tracer);
  }

  for (std::size_t i = 0; i < jobs; ++i) {
    const core::TenantId tenant =
        tenants > 0 ? core::TenantId{i % tenants + 1} : core::TenantId{};
    dispatcher.submit(
        i % 2, tenant,
        core::DiasDispatcher::ContextJobFn(
                   [&](const core::DiasDispatcher::JobContext& ctx) {
                     eng.set_cancellation(ctx.token);
                     eng.set_drop_ratio(ctx.theta);
                     std::vector<int> values(kPartitions);
                     for (std::size_t p = 0; p < kPartitions; ++p)
                       values[p] = static_cast<int>(p);
                     auto ds = eng.parallelize(std::move(values), kPartitions);
                     engine::StageOptions sopts;
                     sopts.name = "overload";
                     sopts.droppable = true;
                     eng.map_partitions(
                         ds,
                         [](const std::vector<int>& part) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(kTaskMs));
                           return part;
                         },
                         sopts);
                   }),
        declared_memory(i % 2));
    std::this_thread::sleep_for(std::chrono::duration<double>(period_ms * 1e-3));
  }
  const auto records = dispatcher.drain();
  if (controller) controller->stop();

  struct ClassStats {
    std::size_t completed = 0, shed = 0, cancelled = 0, failed = 0;
    std::vector<double> responses;
  };
  ClassStats stats[2];
  for (const auto& r : records) {
    auto& s = stats[r.priority];
    switch (r.outcome) {
      case core::JobOutcome::kCompleted:
        ++s.completed;
        s.responses.push_back(r.response_s());
        break;
      case core::JobOutcome::kShed: ++s.shed; break;
      case core::JobOutcome::kCancelled: ++s.cancelled; break;
      case core::JobOutcome::kFailed: ++s.failed; break;
    }
  }
  if (csv) {
    std::printf("class,completed,shed,cancelled,failed,mean_s,p95_s,theta\n");
  } else {
    std::printf("overload run: %zu jobs every %.0f ms, queue cap %zu, %s admission%s\n",
                jobs, period_ms, queue_cap,
                admission == core::AdmissionPolicy::kBlock     ? "block"
                : admission == core::AdmissionPolicy::kReject ? "reject"
                                                              : "shed",
                adaptive ? ", adaptive deflation on" : "");
  }
  for (std::size_t k = 2; k-- > 0;) {
    auto& s = stats[k];
    double mean = 0.0, p95 = 0.0;
    if (!s.responses.empty()) {
      std::sort(s.responses.begin(), s.responses.end());
      for (double r : s.responses) mean += r;
      mean /= static_cast<double>(s.responses.size());
      p95 = s.responses[static_cast<std::size_t>(0.95 *
                                                 double(s.responses.size() - 1))];
    }
    if (csv) {
      std::printf("%zu,%zu,%zu,%zu,%zu,%.3f,%.3f,%.3f\n", k, s.completed, s.shed,
                  s.cancelled, s.failed, mean, p95, dispatcher.theta(k));
    } else {
      std::printf("  class %zu (%s): %zu completed (mean %.3f s, p95 %.3f s), "
                  "%zu shed, %zu cancelled, %zu failed, theta %.2f\n",
                  k, k == 1 ? "high" : "low", s.completed, mean, p95, s.shed,
                  s.cancelled, s.failed, dispatcher.theta(k));
    }
  }
  if (controller) {
    const auto st = controller->status();
    if (csv) {
      std::printf("replans,%llu\nescalations,%llu\nrelaxations,%llu\n",
                  static_cast<unsigned long long>(st.replans),
                  static_cast<unsigned long long>(st.escalations),
                  static_cast<unsigned long long>(st.relaxations));
      if (memory_capacity_mb > 0) {
        std::printf("memory_pressure,%d\nmemory_in_use_bytes,%zu\n",
                    st.memory_pressure ? 1 : 0, st.memory_in_use_bytes);
      }
    } else {
      std::printf("  controller: %llu replans, %llu escalations, %llu relaxations, "
                  "utilization %.2f\n",
                  static_cast<unsigned long long>(st.replans),
                  static_cast<unsigned long long>(st.escalations),
                  static_cast<unsigned long long>(st.relaxations), st.utilization);
      if (memory_capacity_mb > 0) {
        std::printf("  memory: %.1f / %zu MB accounted at shutdown, pressure %s\n",
                    static_cast<double>(st.memory_in_use_bytes) / (1 << 20),
                    memory_capacity_mb, st.memory_pressure ? "on" : "off");
      }
    }
  }
  if (tenants > 0) {
    const auto snap = dispatcher.load_snapshot();
    if (csv) {
      std::printf("tenants,%zu\nfairness_index,%.4f\ntenant_shed,%llu\n"
                  "tenant_deflated,%llu\ntenant_deprioritized,%llu\n",
                  snap.tenants_tracked, snap.tenant_fairness_index,
                  static_cast<unsigned long long>(snap.tenant_shed),
                  static_cast<unsigned long long>(snap.tenant_deflated),
                  static_cast<unsigned long long>(snap.tenant_deprioritized));
    } else {
      std::printf("  tenants: %zu tracked over %zu lanes, Jain fairness %.4f, "
                  "%llu shed / %llu deflated / %llu deprioritized by the ladder\n",
                  snap.tenants_tracked, dispatcher.lanes(),
                  snap.tenant_fairness_index,
                  static_cast<unsigned long long>(snap.tenant_shed),
                  static_cast<unsigned long long>(snap.tenant_deflated),
                  static_cast<unsigned long long>(snap.tenant_deprioritized));
    }
  }
  return 0;
}

std::vector<double> parse_list(const std::string& arg) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const auto comma = arg.find(',', pos);
    out.push_back(std::stod(arg.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// Writes the collected metrics snapshot / trace stream to the requested
// files. Returns false (with a message on stderr) if a file cannot be
// opened, so the run still reports its results but exits non-zero.
bool flush_observability(const std::string& metrics_out, const std::string& trace_out,
                         obs::Registry& metrics, obs::Tracer& tracer) {
  bool ok = true;
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      ok = false;
    } else {
      os << metrics.to_json() << '\n';
    }
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      ok = false;
    } else {
      tracer.write_jsonl(os);
    }
  }
  return ok;
}

std::optional<core::Policy> parse_policy(const std::string& name) {
  if (name == "p") return core::Policy::kPreemptive;
  if (name == "np") return core::Policy::kNonPreemptive;
  if (name == "da") return core::Policy::kDifferentialApprox;
  if (name == "nps") return core::Policy::kNonPreemptiveSprint;
  if (name == "dias") return core::Policy::kDias;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  core::Policy policy = core::Policy::kDifferentialApprox;
  std::vector<double> theta{0.2, 0.0};
  double load = 0.8;
  std::size_t jobs = 10000;
  int slots = 20;
  double mix_low = 9.0, mix_high = 1.0;
  double sprint_timeout = 0.0;
  double sprint_budget = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 1;
  bool csv = false;
  std::string metrics_out;
  std::string trace_out;

  bool engine_wordcount = false;
  bool adaptive_plan = false;
  bool runtime_sprint = false;
  bool runtime_overload = false;
  core::AdmissionPolicy admission = core::AdmissionPolicy::kShedOldestLowest;
  std::size_t queue_cap = 8;
  std::vector<double> deadlines;
  bool adaptive = false;
  std::vector<double> theta_ceiling{0.6, 0.3};
  std::size_t overload_jobs = 150;
  double overload_period_ms = 10.0;
  std::size_t memory_capacity_mb = 0;
  std::vector<double> job_memory_mb;
  std::size_t lanes = 0;
  std::size_t tenants = 0;
  std::size_t shuffle_budget_bytes = 0;
  std::string spill_dir;
  std::size_t reserve_workers = 6;
  double sprint_replenish = 0.0;
  std::size_t bursts = 8;
  std::size_t rows = 2000;
  std::size_t partitions = 40;
  engine::FaultToleranceOptions fault;
  fault.max_attempts = 3;
  fault.injection.straggler_delay_ms = 50.0;
  fault.injection.droppable_only = true;
  fault.injection.seed = 99;
  std::uint64_t chaos_seed = 0;
  double chaos_rate = 0.0;
  std::string chaos_points;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--policy") {
      const auto p = parse_policy(next());
      if (!p) {
        std::fprintf(stderr, "unknown policy\n");
        return 2;
      }
      policy = *p;
    } else if (arg == "--theta") {
      theta = parse_list(next());
    } else if (arg == "--load") {
      load = std::stod(next());
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--slots") {
      slots = std::stoi(next());
    } else if (arg == "--mix") {
      const auto v = next();
      const auto colon = v.find(':');
      mix_low = std::stod(v.substr(0, colon));
      mix_high = colon == std::string::npos ? 1.0 : std::stod(v.substr(colon + 1));
    } else if (arg == "--sprint-timeout") {
      sprint_timeout = std::stod(next());
    } else if (arg == "--sprint-budget") {
      sprint_budget = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--engine-wordcount") {
      engine_wordcount = true;
    } else if (arg == "--adaptive-plan") {
      adaptive_plan = true;
    } else if (arg == "--runtime-sprint") {
      runtime_sprint = true;
    } else if (arg == "--runtime-overload") {
      runtime_overload = true;
    } else if (arg == "--admission") {
      const auto v = next();
      if (v == "block") {
        admission = core::AdmissionPolicy::kBlock;
      } else if (v == "reject") {
        admission = core::AdmissionPolicy::kReject;
      } else if (v == "shed") {
        admission = core::AdmissionPolicy::kShedOldestLowest;
      } else {
        std::fprintf(stderr, "unknown admission policy %s\n", v.c_str());
        return 2;
      }
    } else if (arg == "--queue-cap") {
      queue_cap = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--deadline") {
      deadlines = parse_list(next());
    } else if (arg == "--adaptive") {
      adaptive = true;
    } else if (arg == "--theta-ceiling") {
      theta_ceiling = parse_list(next());
    } else if (arg == "--overload-jobs") {
      overload_jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--overload-period-ms") {
      overload_period_ms = std::stod(next());
    } else if (arg == "--memory-capacity-mb") {
      memory_capacity_mb = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--job-memory-mb") {
      job_memory_mb = parse_list(next());
    } else if (arg == "--lanes") {
      lanes = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--tenants") {
      tenants = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--shuffle-budget-bytes") {
      shuffle_budget_bytes = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--spill-dir") {
      spill_dir = next();
    } else if (arg == "--reserve-workers") {
      reserve_workers = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--sprint-replenish") {
      sprint_replenish = std::stod(next());
    } else if (arg == "--bursts") {
      bursts = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--rows") {
      rows = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--partitions") {
      partitions = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--fault-rate") {
      fault.injection.fail_prob = std::stod(next());
    } else if (arg == "--straggler-rate") {
      fault.injection.straggler_prob = std::stod(next());
    } else if (arg == "--straggler-delay-ms") {
      fault.injection.straggler_delay_ms = std::stod(next());
    } else if (arg == "--max-attempts") {
      fault.max_attempts = std::stoi(next());
    } else if (arg == "--retry-backoff-ms") {
      fault.retry_backoff_ms = std::stod(next());
    } else if (arg == "--speculation") {
      fault.speculation = true;
    } else if (arg == "--fault-all-stages") {
      fault.injection.droppable_only = false;
    } else if (arg == "--fault-seed") {
      fault.injection.seed = std::stoull(next());
    } else if (arg == "--chaos-seed") {
      chaos_seed = std::stoull(next());
    } else if (arg == "--chaos-rate") {
      chaos_rate = std::stod(next());
    } else if (arg == "--chaos-points") {
      chaos_points = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (chaos_rate > 0.0 || !chaos_points.empty()) {
    try {
      chaos::ChaosSchedule schedule;
      schedule.seed = chaos_seed;
      if (!chaos_points.empty()) {
        schedule.points = chaos::ChaosSchedule::parse_points(chaos_points);
      } else {
        // --chaos-rate alone: arm every injection point with throws.
        chaos::PointSpec spec;
        spec.shape = chaos::Shape::kThrow;
        spec.rate = chaos_rate;
        schedule.points.emplace_back("*", spec);
      }
      chaos::ChaosPlane::instance().install(schedule);
      std::fprintf(stderr, "chaos: armed (seed %llu)\n",
                   static_cast<unsigned long long>(chaos_seed));
    } catch (const dias::config_error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  obs::Registry obs_metrics;
  obs::Tracer obs_tracer;
  const bool want_obs = !metrics_out.empty() || !trace_out.empty();

  if (runtime_overload) {
    const int rc = run_runtime_overload(admission, queue_cap, std::move(deadlines),
                                        adaptive, std::move(theta_ceiling),
                                        overload_jobs, overload_period_ms,
                                        memory_capacity_mb, std::move(job_memory_mb),
                                        lanes, tenants, csv,
                                        want_obs ? &obs_metrics : nullptr,
                                        want_obs ? &obs_tracer : nullptr);
    if (!flush_observability(metrics_out, trace_out, obs_metrics, obs_tracer)) return 1;
    return rc;
  }

  if (runtime_sprint) {
    const int rc = run_runtime_sprint(bursts, reserve_workers, sprint_timeout,
                                      sprint_budget, sprint_replenish, csv,
                                      want_obs ? &obs_metrics : nullptr,
                                      want_obs ? &obs_tracer : nullptr);
    if (!flush_observability(metrics_out, trace_out, obs_metrics, obs_tracer)) return 1;
    return rc;
  }

  if (engine_wordcount) {
    const int rc = run_engine_wordcount(theta.empty() ? 0.2 : theta.front(), rows,
                                        partitions, seed, fault, shuffle_budget_bytes,
                                        std::move(spill_dir), adaptive_plan, csv,
                                        want_obs ? &obs_metrics : nullptr,
                                        want_obs ? &obs_tracer : nullptr);
    if (!flush_observability(metrics_out, trace_out, obs_metrics, obs_tracer)) return 1;
    return rc;
  }

  // Reference workload shapes, mixed and scaled to the requested load.
  workload::ClassWorkloadParams low;
  low.arrival_rate = mix_low;
  low.mean_size_mb = 1117.0;
  low.map_seconds_per_mb = 0.9;
  low.reduce_seconds_per_mb = 0.18;
  low.label = "low";
  auto high = low;
  high.arrival_rate = mix_high;
  high.mean_size_mb = 473.0;
  high.label = "high";
  std::vector<workload::ClassWorkloadParams> classes{low, high};
  workload::calibrate_rates_by_pilot(classes, slots, load,
                                     cluster::TaskTimeFamily::kLogNormal);

  workload::TraceGenerator gen(seed);
  auto trace = gen.text_trace(classes, jobs);

  core::ExperimentConfig config;
  config.policy = policy;
  config.slots = slots;
  config.theta = theta;
  config.sprint.speedup = 2.5;
  config.sprint.budget_joules = sprint_budget;
  config.sprint.budget_cap_joules = sprint_budget;
  config.sprint.timeout_s = {std::numeric_limits<double>::infinity(), sprint_timeout};
  config.warmup_jobs = jobs / 10;
  config.seed = seed + 1;
  if (want_obs) {
    config.metrics = &obs_metrics;
    config.tracer = &obs_tracer;
  }
  const auto result = core::run_experiment(config, std::move(trace));
  if (!flush_observability(metrics_out, trace_out, obs_metrics, obs_tracer)) return 1;

  if (csv) {
    std::printf("class,completed,mean_s,p50_s,p95_s,p99_s,queue_s,exec_s\n");
    for (std::size_t k = result.per_class.size(); k-- > 0;) {
      const auto& m = result.per_class[k];
      if (m.completed == 0) continue;
      std::printf("%zu,%zu,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", k, m.completed,
                  m.response.mean(), m.response.p50(), m.response.p95(),
                  m.response.p99(), m.queueing.mean(), m.execution.mean());
    }
    std::printf("waste,%.4f\nenergy_j,%.0f\nutilization,%.4f\n", result.resource_waste(),
                result.energy_joules, result.utilization());
    return 0;
  }

  std::printf("policy %s, %zu jobs, %d slots, target load %.2f\n",
              core::to_string(policy), jobs, slots, load);
  for (std::size_t k = result.per_class.size(); k-- > 0;) {
    const auto& m = result.per_class[k];
    if (m.completed == 0) continue;
    std::printf("  class %zu (%s): %zu jobs, mean %.1f s, p95 %.1f s, queue %.1f s, "
                "exec %.1f s\n",
                k, k + 1 == result.per_class.size() ? "high" : "low", m.completed,
                m.response.mean(), m.response.p95(), m.queueing.mean(),
                m.execution.mean());
  }
  std::printf("  waste %.1f%%, energy %.1f MJ, utilization %.1f%%, evictions %zu\n",
              100.0 * result.resource_waste(), result.energy_joules / 1e6,
              100.0 * result.utilization(), result.total_evictions);
  return 0;
}
