// dias_cli: command-line experiment runner for the simulated cluster.
//
//   $ ./dias_cli --policy dias --theta 0.2,0 --load 0.8 --jobs 10000
//
// A downstream-user-facing driver: describe a two-priority workload with
// flags, run any of the paper's policies, and get per-class latency, waste
// and energy (optionally as CSV for scripting).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace dias;

void usage(const char* prog) {
  std::printf(
      "usage: %s [options]\n"
      "  --policy <p|np|da|nps|dias>   scheduling policy (default da)\n"
      "  --theta <low,high,...>        per-class drop ratios (default 0.2,0)\n"
      "  --load <x>                    target utilization in (0,1) (default 0.8)\n"
      "  --jobs <n>                    trace length (default 10000)\n"
      "  --slots <n>                   computing slots (default 20)\n"
      "  --mix <low:high>              arrival mix (default 9:1)\n"
      "  --sprint-timeout <s>          high-class sprint timeout (default 0)\n"
      "  --sprint-budget <J>           sprint budget in Joules (default inf)\n"
      "  --seed <n>                    RNG seed (default 1)\n"
      "  --csv                         machine-readable output\n"
      "  --help                        this text\n",
      prog);
}

std::vector<double> parse_list(const std::string& arg) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < arg.size()) {
    const auto comma = arg.find(',', pos);
    out.push_back(std::stod(arg.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::optional<core::Policy> parse_policy(const std::string& name) {
  if (name == "p") return core::Policy::kPreemptive;
  if (name == "np") return core::Policy::kNonPreemptive;
  if (name == "da") return core::Policy::kDifferentialApprox;
  if (name == "nps") return core::Policy::kNonPreemptiveSprint;
  if (name == "dias") return core::Policy::kDias;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  core::Policy policy = core::Policy::kDifferentialApprox;
  std::vector<double> theta{0.2, 0.0};
  double load = 0.8;
  std::size_t jobs = 10000;
  int slots = 20;
  double mix_low = 9.0, mix_high = 1.0;
  double sprint_timeout = 0.0;
  double sprint_budget = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 1;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--policy") {
      const auto p = parse_policy(next());
      if (!p) {
        std::fprintf(stderr, "unknown policy\n");
        return 2;
      }
      policy = *p;
    } else if (arg == "--theta") {
      theta = parse_list(next());
    } else if (arg == "--load") {
      load = std::stod(next());
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--slots") {
      slots = std::stoi(next());
    } else if (arg == "--mix") {
      const auto v = next();
      const auto colon = v.find(':');
      mix_low = std::stod(v.substr(0, colon));
      mix_high = colon == std::string::npos ? 1.0 : std::stod(v.substr(colon + 1));
    } else if (arg == "--sprint-timeout") {
      sprint_timeout = std::stod(next());
    } else if (arg == "--sprint-budget") {
      sprint_budget = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // Reference workload shapes, mixed and scaled to the requested load.
  workload::ClassWorkloadParams low;
  low.arrival_rate = mix_low;
  low.mean_size_mb = 1117.0;
  low.map_seconds_per_mb = 0.9;
  low.reduce_seconds_per_mb = 0.18;
  low.label = "low";
  auto high = low;
  high.arrival_rate = mix_high;
  high.mean_size_mb = 473.0;
  high.label = "high";
  std::vector<workload::ClassWorkloadParams> classes{low, high};
  workload::calibrate_rates_by_pilot(classes, slots, load,
                                     cluster::TaskTimeFamily::kLogNormal);

  workload::TraceGenerator gen(seed);
  auto trace = gen.text_trace(classes, jobs);

  core::ExperimentConfig config;
  config.policy = policy;
  config.slots = slots;
  config.theta = theta;
  config.sprint.speedup = 2.5;
  config.sprint.budget_joules = sprint_budget;
  config.sprint.budget_cap_joules = sprint_budget;
  config.sprint.timeout_s = {std::numeric_limits<double>::infinity(), sprint_timeout};
  config.warmup_jobs = jobs / 10;
  config.seed = seed + 1;
  const auto result = core::run_experiment(config, std::move(trace));

  if (csv) {
    std::printf("class,completed,mean_s,p50_s,p95_s,p99_s,queue_s,exec_s\n");
    for (std::size_t k = result.per_class.size(); k-- > 0;) {
      const auto& m = result.per_class[k];
      if (m.completed == 0) continue;
      std::printf("%zu,%zu,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", k, m.completed,
                  m.response.mean(), m.response.p50(), m.response.p95(),
                  m.response.p99(), m.queueing.mean(), m.execution.mean());
    }
    std::printf("waste,%.4f\nenergy_j,%.0f\nutilization,%.4f\n", result.resource_waste(),
                result.energy_joules, result.utilization());
    return 0;
  }

  std::printf("policy %s, %zu jobs, %d slots, target load %.2f\n",
              core::to_string(policy), jobs, slots, load);
  for (std::size_t k = result.per_class.size(); k-- > 0;) {
    const auto& m = result.per_class[k];
    if (m.completed == 0) continue;
    std::printf("  class %zu (%s): %zu jobs, mean %.1f s, p95 %.1f s, queue %.1f s, "
                "exec %.1f s\n",
                k, k + 1 == result.per_class.size() ? "high" : "low", m.completed,
                m.response.mean(), m.response.p95(), m.queueing.mean(),
                m.execution.mean());
  }
  std::printf("  waste %.1f%%, energy %.1f MJ, utilization %.1f%%, evictions %zu\n",
              100.0 * result.resource_waste(), result.energy_joules / 1e6,
              100.0 * result.utilization(), result.total_evictions);
  return 0;
}
