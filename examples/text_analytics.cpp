// Text analytics: run *real* approximate word-count jobs through the DiAS
// dispatcher on a synthetic StackExchange-like corpus.
//
//   $ ./text_analytics
//
// Demonstrates the real-execution plane: the mini MapReduce engine with
// task dropping, priority buffers with a non-preemptive dispatcher, and
// the latency/accuracy frontier of differential approximation.
#include <cstdio>
#include <mutex>
#include <vector>

#include "analytics/word_count.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "workload/text_corpus.hpp"

int main() {
  using namespace dias;

  // Synthetic per-topic dumps (stand-in for the 164 StackExchange sites).
  std::vector<workload::TextCorpus> corpora;
  for (int site = 0; site < 6; ++site) {
    workload::TextCorpusParams params;
    params.posts = 2500;
    params.vocabulary = 2000;
    params.drift_segments = 10;
    params.seed = 42 + static_cast<std::uint64_t>(site);
    corpora.push_back(workload::generate_text_corpus("site" + std::to_string(site), params));
  }

  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);

  // --- latency/accuracy frontier of one dataset ---------------------------
  std::printf("latency/accuracy frontier (site0, 50 partitions):\n");
  std::printf("  %-6s  %10s  %10s  %12s\n", "theta", "tasks run", "time [ms]", "error [%]");
  const auto exact = analytics::exact_word_count(corpora[0].rows);
  const auto ds = eng.parallelize(corpora[0].rows, 50);
  for (double theta : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    const auto result = analytics::word_count(eng, ds, 20, theta);
    std::printf("  %-6.1f  %7zu/50  %10.1f  %12.1f\n", theta, result.map_tasks_run,
                1000.0 * result.duration_s,
                analytics::word_count_error(exact, result.counts, 200));
  }

  // --- two-priority stream through the DiAS dispatcher --------------------
  // Low-priority jobs (class 0) are deflated at theta = 0.2; high-priority
  // jobs (class 1) run exact. Non-preemptive: nothing is ever evicted.
  std::printf("\ndispatching %zu jobs through DiAS priority buffers (theta = {0.2, 0})\n",
              corpora.size());
  core::DiasDispatcher dispatcher({0.2, 0.0});
  std::mutex io_mutex;
  for (std::size_t i = 0; i < corpora.size(); ++i) {
    const auto& corpus = corpora[i];
    const std::size_t priority = i % 3 == 0 ? 1 : 0;  // every third job is high
    dispatcher.submit(priority, [&, priority](double theta) {
      const auto data = eng.parallelize(corpus.rows, 50);
      const auto result = analytics::word_count(eng, data, 20, theta);
      std::lock_guard lock(io_mutex);
      std::printf("  %-6s %-5s theta=%.1f  %2zu/%zu map tasks  %6.1f ms  %zu words\n",
                  corpus.site.c_str(), priority == 1 ? "high" : "low", theta,
                  result.map_tasks_run, result.map_tasks_total,
                  1000.0 * result.duration_s, result.counts.size());
    });
  }
  const auto records = dispatcher.drain();
  double high_mean = 0.0, low_mean = 0.0;
  std::size_t high_n = 0, low_n = 0;
  for (const auto& r : records) {
    if (r.priority == 1) {
      high_mean += r.response_s();
      ++high_n;
    } else {
      low_mean += r.response_s();
      ++low_n;
    }
  }
  std::printf("\nmean response: high %.1f ms (%zu jobs), low %.1f ms (%zu jobs)\n",
              1000.0 * high_mean / static_cast<double>(high_n), high_n,
              1000.0 * low_mean / static_cast<double>(low_n), low_n);
  return 0;
}
