// Quickstart: submit a two-priority job stream to a simulated cluster and
// compare the paper's policies (P, NP, DA, DiAS) in one run.
//
//   $ ./quickstart
//
// Walks through the public API end to end: describe workload classes,
// generate a trace, run each policy, and print per-class latency, waste,
// and energy.
#include <cstdio>
#include <vector>

#include "core/controller.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace dias;

  // 1. Describe the workload: two priority classes (index 1 = high), the
  //    reference 9:1 mix with low-priority jobs ~2.4x larger.
  workload::ClassWorkloadParams low;
  low.arrival_rate = 0.0045;   // jobs/s
  low.mean_size_mb = 1117.0;
  low.map_seconds_per_mb = 0.9;
  low.reduce_seconds_per_mb = 0.18;
  low.label = "low";
  workload::ClassWorkloadParams high = low;
  high.arrival_rate = 0.0005;
  high.mean_size_mb = 473.0;
  high.label = "high";

  // 2. Generate a Poisson arrival trace (class order: low, high).
  workload::TraceGenerator gen(/*seed=*/1);
  const std::vector<workload::ClassWorkloadParams> classes{low, high};
  const auto trace = gen.text_trace(classes, /*jobs=*/6000);

  // 3. Run each policy over the same trace.
  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = 20;
    config.theta = std::move(theta);  // per-class drop ratios (low, high)
    config.sprint.speedup = 2.5;      // DVFS 800 MHz -> 2.4 GHz
    config.sprint.timeout_s = {std::numeric_limits<double>::infinity(), 0.0};
    config.warmup_jobs = 500;
    return core::run_experiment(config, trace);
  };

  std::printf("policy        high mean/p95 [s]    low mean/p95 [s]   waste   energy [MJ]\n");
  struct Case {
    const char* name;
    core::Policy policy;
    std::vector<double> theta;
  };
  for (const auto& c : {Case{"P", core::Policy::kPreemptive, {}},
                        Case{"NP", core::Policy::kNonPreemptive, {}},
                        Case{"DA(0,20)", core::Policy::kDifferentialApprox, {0.2, 0.0}},
                        Case{"DiAS(0,20)", core::Policy::kDias, {0.2, 0.0}}}) {
    const auto result = run(c.policy, c.theta);
    std::printf("%-12s %8.1f / %-8.1f %9.1f / %-9.1f %5.1f%%  %10.1f\n", c.name,
                result.per_class[1].response.mean(), result.per_class[1].tail_response(),
                result.per_class[0].response.mean(), result.per_class[0].tail_response(),
                100.0 * result.resource_waste(), result.energy_joules / 1e6);
  }
  std::printf("\nDiAS: no evictions, deflated low-priority jobs, sprinted high-priority\n"
              "jobs -- both classes improve and energy drops (see bench/ for the\n"
              "full per-figure reproductions).\n");
  return 0;
}
