// Graph analytics: approximate triangle counting with per-stage dropping.
//
//   $ ./graph_triangles
//
// Runs the real multi-stage triangle-count job (the paper's graphx
// workload) on an R-MAT power-law graph and shows how the per-stage drop
// ratio trades count accuracy for execution time.
#include <cstdio>

#include "analytics/triangle_count.hpp"
#include "common/stats.hpp"
#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"

int main() {
  using namespace dias;

  // R-MAT stand-in for the Google web graph (scaled down: the paper's
  // graph has 875'713 nodes and 5'105'039 edges).
  workload::GraphParams params;
  params.scale = 13;           // 8192 vertices
  params.edges = 120000;
  params.seed = 7;
  const auto edges = workload::generate_rmat_graph(params);
  const auto exact = workload::exact_triangle_count(edges);
  std::printf("graph: %zu unique edges, %llu triangles (exact)\n\n", edges.size(),
              static_cast<unsigned long long>(exact));

  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  const auto ds = eng.parallelize(edges, 50);

  std::printf("%-12s  %12s  %10s  %12s  %10s\n", "stage theta", "triangles", "error [%]",
              "tasks run", "time [ms]");
  double exact_time = 0.0;
  for (double theta : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const auto result = analytics::triangle_count(eng, ds, theta);
    if (theta == 0.0) exact_time = result.duration_s;
    std::printf("%-12g  %12llu  %10.1f  %6zu/%-5zu  %10.1f\n", theta,
                static_cast<unsigned long long>(result.triangles),
                exact == 0 ? 0.0
                           : relative_error_percent(static_cast<double>(exact),
                                                    static_cast<double>(result.triangles)),
                result.tasks_run, result.tasks_total, 1000.0 * result.duration_s);
  }
  std::printf("\nspeedup at theta=0.2 vs exact: measure via the time column (exact run "
              "%.1f ms).\nEvery ShuffleMap stage drops independently, so the effective "
              "total drop\ncompounds across the job's stages (paper Section 5.2.4).\n",
              1000.0 * exact_time);
  return 0;
}
